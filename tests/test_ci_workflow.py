"""Structural validation of the CI workflow (a dry-run stand-in for actionlint).

The pipeline is part of the contract: lint, tier-1 tests, the benchmark
smoke run and the crash/resume durability smoke must stay distinct jobs,
the test job must cover the supported interpreter matrix, and every job
must keep pip caching on.
"""

import os

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = os.path.join(os.path.dirname(__file__), "..", ".github", "workflows", "ci.yml")


@pytest.fixture(scope="module")
def workflow():
    with open(WORKFLOW) as stream:
        return yaml.safe_load(stream)


def test_workflow_parses_and_triggers(workflow):
    assert workflow["name"] == "CI"
    # PyYAML parses the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_lint_tests_and_smoke_runs_are_distinct_jobs(workflow):
    jobs = workflow["jobs"]
    assert set(jobs) == {"lint", "tests", "bench-smoke", "crash-resume",
                         "prefix-cache", "data-plane", "multi-tenant",
                         "telemetry"}
    assert any("ruff check" in step.get("run", "") for step in jobs["lint"]["steps"])
    assert any("python -m pytest -x -q" in step.get("run", "")
               for step in jobs["tests"]["steps"])
    assert any('-k "pipeline_engine"' in step.get("run", "")
               for step in jobs["bench-smoke"]["steps"])


def test_prefix_cache_smoke_records_the_throughput_benchmark(workflow):
    """The cache's 1.5x throughput bar is CI-enforced, its result recorded,
    and the fresh record diffed against the committed baseline."""
    steps = workflow["jobs"]["prefix-cache"]["steps"]
    runs = [step.get("run", "") for step in steps]
    smoke = [run for run in runs if "scripts/record_bench.py" in run]
    assert smoke, "the prefix-cache job must run scripts/record_bench.py"
    assert "BENCH_prefix_cache.json" in smoke[0]
    gate = [run for run in runs if "check_bench_regression.py" in run]
    assert gate, "the job must run the perf-regression gate"
    assert "--tolerance 0.20" in gate[0]
    assert "BENCH_prefix_cache.json" in gate[0]
    # the baseline is snapshotted before the recorder overwrites it
    snapshot = [run for run in runs if ".bench-baseline" in run and "cp " in run]
    assert snapshot and runs.index(snapshot[0]) < runs.index(gate[0])
    # the script and the committed benchmark record both exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "scripts", "record_bench.py"))
    assert os.path.exists(os.path.join(root, "BENCH_prefix_cache.json"))


def test_data_plane_smoke_records_both_benchmarks_and_gates_regressions(workflow):
    """The 1.3x/1.5x data-plane and batched-eval bars are CI-enforced and the
    fresh records are diffed against the committed baselines."""
    steps = workflow["jobs"]["data-plane"]["steps"]
    runs = [step.get("run", "") for step in steps]
    assert any("record_bench.py data-plane" in run and "BENCH_data_plane.json" in run
               for run in runs), "the job must record the data-plane benchmark"
    assert any("record_bench.py batched-eval" in run and "BENCH_batched_eval.json" in run
               for run in runs), "the job must record the batched-eval benchmark"
    gate = [run for run in runs if "check_bench_regression.py" in run]
    assert gate, "the job must run the perf-regression gate"
    assert "--tolerance 0.20" in gate[0]
    assert "BENCH_data_plane.json" in gate[0] and "BENCH_batched_eval.json" in gate[0]
    # the baselines are snapshotted before the recorders overwrite them
    snapshot = [run for run in runs if ".bench-baseline" in run and "cp " in run]
    assert snapshot and runs.index(snapshot[0]) < runs.index(gate[0])
    # the scripts and the committed benchmark records all exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "scripts", "check_bench_regression.py"))
    assert os.path.exists(os.path.join(root, "BENCH_data_plane.json"))
    assert os.path.exists(os.path.join(root, "BENCH_batched_eval.json"))


def test_multi_tenant_smoke_records_the_benchmark_and_gates_regressions(workflow):
    """The fleet's 0.8x/1.5x aggregate-throughput bars are CI-enforced and
    the fresh record is diffed against the committed baseline."""
    steps = workflow["jobs"]["multi-tenant"]["steps"]
    runs = [step.get("run", "") for step in steps]
    assert any("record_bench.py multi-tenant" in run
               and "BENCH_multi_tenant.json" in run
               for run in runs), "the job must record the multi-tenant benchmark"
    gate = [run for run in runs if "check_bench_regression.py" in run]
    assert gate, "the job must run the perf-regression gate"
    assert "--tolerance 0.20" in gate[0]
    assert "BENCH_multi_tenant.json" in gate[0]
    # the baseline is snapshotted before the recorder overwrites it
    snapshot = [run for run in runs if ".bench-baseline" in run and "cp " in run]
    assert snapshot and runs.index(snapshot[0]) < runs.index(gate[0])
    # the committed benchmark record and the benchmark test both exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "BENCH_multi_tenant.json"))
    assert os.path.exists(os.path.join(root, "benchmarks",
                                       "test_bench_multi_tenant.py"))


def test_telemetry_job_runs_round_trip_and_overhead_gates(workflow):
    """The replay guarantee and the <= ~5% overhead bar are CI-enforced and
    the fresh overhead record is diffed against the committed baseline."""
    steps = workflow["jobs"]["telemetry"]["steps"]
    runs = [step.get("run", "") for step in steps]
    assert any("pytest tests/telemetry" in run for run in runs), (
        "the job must run the replayer round-trip smoke")
    assert any("record_bench.py telemetry" in run
               and "BENCH_telemetry_overhead.json" in run
               for run in runs), "the job must record the overhead benchmark"
    gate = [run for run in runs if "check_bench_regression.py" in run]
    assert gate, "the job must run the perf-regression gate"
    assert "--tolerance 0.20" in gate[0]
    assert "BENCH_telemetry_overhead.json" in gate[0]
    # the baseline is snapshotted before the recorder overwrites it
    snapshot = [run for run in runs if ".bench-baseline" in run and "cp " in run]
    assert snapshot and runs.index(snapshot[0]) < runs.index(gate[0])
    # the committed benchmark record and the round-trip tests both exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "BENCH_telemetry_overhead.json"))
    assert os.path.exists(os.path.join(root, "tests", "telemetry",
                                       "test_replayer.py"))


def test_crash_resume_smoke_runs_the_kill_and_resume_gate(workflow):
    """The durability guarantee is CI-enforced: kill a run, resume, compare."""
    steps = workflow["jobs"]["crash-resume"]["steps"]
    smoke = [step for step in steps
             if "scripts/crash_resume_smoke.py" in step.get("run", "")]
    assert smoke, "the crash-resume job must run scripts/crash_resume_smoke.py"
    # the script exists and is the same file the job references
    script = os.path.join(os.path.dirname(__file__), "..", "scripts",
                          "crash_resume_smoke.py")
    assert os.path.exists(script)


def test_tier1_matrix_covers_supported_interpreters(workflow):
    matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
    assert matrix == ["3.10", "3.11", "3.12"]


def test_every_job_is_well_formed_with_pip_caching(workflow):
    for name, job in workflow["jobs"].items():
        assert job["runs-on"] == "ubuntu-latest", name
        steps = job["steps"]
        assert isinstance(steps, list) and steps, name
        for step in steps:
            # exactly one of uses/run per step, and actions are pinned
            assert ("uses" in step) != ("run" in step), (name, step)
            if "uses" in step:
                action, _, version = step["uses"].partition("@")
                assert version, step["uses"]
        setup_steps = [step for step in steps
                       if step.get("uses", "").startswith("actions/setup-python")]
        assert setup_steps, name
        assert all(step["with"].get("cache") == "pip" for step in setup_steps), name
