"""Tests for piex text reporting."""

import pytest

from repro.explorer import PipelineStore, format_report, report, summarize_store


@pytest.fixture
def store():
    store = PipelineStore()
    documents = [
        {"task_name": "t1", "template_name": "xgb", "score": 0.5, "is_default": True},
        {"task_name": "t1", "template_name": "xgb", "score": 0.8},
        {"task_name": "t1", "template_name": "rf", "score": 0.6},
        {"task_name": "t2", "template_name": "xgb", "score": 0.4, "is_default": True},
        {"task_name": "t2", "template_name": "rf", "score": None, "error": "boom"},
    ]
    for document in documents:
        store.add(document)
    return store


class TestSummarizeStore:
    def test_counts(self, store):
        summary = summarize_store(store)
        assert summary["n_documents"] == 5
        assert summary["n_failed"] == 1
        assert summary["n_tasks"] == 2

    def test_template_statistics(self, store):
        summary = summarize_store(store)
        assert summary["templates"]["xgb"]["n_pipelines"] == 3
        assert summary["templates"]["xgb"]["best_score"] == pytest.approx(0.8)
        assert summary["templates"]["rf"]["mean_score"] == pytest.approx(0.6)

    def test_best_per_task(self, store):
        summary = summarize_store(store)
        assert summary["best_per_task"] == {"t1": 0.8, "t2": 0.4}

    def test_filters_restrict_documents(self, store):
        summary = summarize_store(store, template_name="rf")
        assert summary["n_documents"] == 2


class TestFormatReport:
    def test_report_contains_key_sections(self, store):
        text = report(store, title="experiment A")
        assert "experiment A" in text
        assert "pipelines evaluated : 5" in text
        assert "xgb" in text
        assert "t1" in text

    def test_format_report_accepts_summary(self, store):
        summary = summarize_store(store)
        text = format_report(summary)
        assert "piex report" in text
        assert "mean tuning gain" in text

    def test_report_on_search_results(self):
        from repro.automl import AutoBazaarSearch
        from repro.tasks import synth

        store = PipelineStore()
        task = synth.make_single_table_classification(n_samples=80, random_state=2)
        AutoBazaarSearch(n_splits=2, random_state=0, store=store).search(task, budget=4)
        text = report(store)
        assert "pipelines evaluated : 4" in text
