"""Tests for the pipeline store and meta-analysis (piex)."""

import json

import numpy as np
import pytest

from repro.explorer import (
    PipelineStore,
    best_score_per_task,
    improvement_sigmas_per_task,
    pairwise_win_rate,
    summarize_improvements,
)


def _document(task="task_a", template="xgb", score=0.5, is_default=False, **extra):
    document = {
        "task_name": task,
        "template_name": template,
        "score": score,
        "is_default": is_default,
    }
    document.update(extra)
    return document


class TestPipelineStore:
    def test_add_and_len(self):
        store = PipelineStore()
        store.add(_document())
        assert len(store) == 1

    def test_add_requires_core_fields(self):
        with pytest.raises(ValueError):
            PipelineStore().add({"task_name": "t"})

    def test_find_filters_by_equality(self):
        store = PipelineStore()
        store.add(_document(task="a", estimator="xgb"))
        store.add(_document(task="a", estimator="rf"))
        assert len(store.find(estimator="xgb")) == 1

    def test_tasks_and_templates_listing(self):
        store = PipelineStore()
        store.add(_document(task="b", template="t2"))
        store.add(_document(task="a", template="t1"))
        assert store.tasks() == ["a", "b"]
        assert store.templates() == ["t1", "t2"]

    def test_scores_for_task_skips_failures(self):
        store = PipelineStore()
        store.add(_document(score=0.4))
        store.add(_document(score=None, error="boom"))
        assert store.scores_for_task("task_a") == [0.4]
        assert len(store.scores_for_task("task_a", include_failed=True)) == 2

    def test_json_round_trip(self, tmp_path):
        store = PipelineStore()
        store.add(_document(score=0.7))
        path = tmp_path / "store.json"
        store.dump_json(path)
        loaded = PipelineStore.load_json(path)
        assert len(loaded) == 1
        assert loaded.scores_for_task("task_a") == [0.7]

    def test_json_round_trip_preserves_numpy_score_dtypes(self, tmp_path):
        """Satellite: np.float64 scores must come back as floats, not strings."""
        store = PipelineStore()
        store.add(_document(
            score=np.float64(0.625),
            hyperparameters={"('step', 'depth')": np.int64(4), "flag": np.bool_(True),
                             "weights": np.asarray([0.5, 1.5])},
        ))
        path = tmp_path / "store.json"
        store.dump_json(path)
        loaded = PipelineStore.load_json(path)
        document = next(iter(loaded))
        assert document["score"] == 0.625 and type(document["score"]) is float
        hyperparameters = document["hyperparameters"]
        assert hyperparameters["('step', 'depth')"] == 4
        assert type(hyperparameters["('step', 'depth')"]) is int
        assert hyperparameters["flag"] is True
        assert hyperparameters["weights"] == [0.5, 1.5]
        # normalization happens at insert time, so the live store already
        # holds native types (queries never see numpy scalars)
        live = next(iter(store))
        assert type(live["score"]) is float

    def test_load_json_rejects_partial_documents(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps([
            {"task_name": "t", "template_name": "x", "score": 0.5},
            {"task_name": "t"},  # missing core fields
        ]))
        with pytest.raises(ValueError, match="document #1"):
            PipelineStore.load_json(path)

    def test_load_json_rejects_non_dict_entries(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps([["not", "a", "document"]]))
        with pytest.raises(ValueError, match="document #0"):
            PipelineStore.load_json(path)

    def test_load_json_rejects_wrong_top_level_type(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({"task_name": "t"}))
        with pytest.raises(ValueError, match="JSON list"):
            PipelineStore.load_json(path)

    def test_scores_for_task_tolerates_absent_score_key(self):
        store = PipelineStore()
        store.add(_document(score=0.4))
        # documents without a "score" key can enter through internal
        # insertion paths (tagged documents, legacy stores)
        store._insert({"task_name": "task_a", "template_name": "xgb"})
        assert store.scores_for_task("task_a") == [0.4]
        assert store.scores_for_task("task_a", include_failed=True) == [0.4, None]

    def test_add_result_tags_documents(self):
        from repro.automl.search import EvaluationRecord, SearchResult

        records = [
            EvaluationRecord("t", "xgb_template", {}, 0.5, 0.5, 0, 0.1, is_default=True),
            EvaluationRecord("t", "xgb_template", {}, 0.7, 0.7, 1, 0.1),
        ]
        result = SearchResult("t", "xgb_template", {}, 0.7, None, records)
        store = PipelineStore()
        store.add_result(result, tags={"estimator": "xgb"})
        assert len(store.find(estimator="xgb")) == 2


class TestAnalysis:
    def _populated_store(self):
        store = PipelineStore()
        # task_a: default 0.5, best 0.9; task_b: default 0.6, best 0.6
        store.add(_document(task="task_a", score=0.5, is_default=True))
        store.add(_document(task="task_a", score=0.7))
        store.add(_document(task="task_a", score=0.9))
        store.add(_document(task="task_b", score=0.6, is_default=True))
        store.add(_document(task="task_b", score=0.6))
        return store

    def test_best_score_per_task(self):
        best = best_score_per_task(self._populated_store())
        assert best["task_a"] == 0.9
        assert best["task_b"] == 0.6

    def test_improvement_sigmas_positive_when_tuning_helps(self):
        improvements = improvement_sigmas_per_task(self._populated_store())
        assert improvements["task_a"] > 0.0
        assert improvements["task_b"] == 0.0

    def test_summarize_improvements(self):
        improvements = {"a": 2.0, "b": 0.5, "c": 1.5}
        summary = summarize_improvements(improvements)
        assert summary["n_tasks"] == 3
        assert summary["mean_sigmas"] == pytest.approx(4.0 / 3)
        assert summary["fraction_above_1_sigma"] == pytest.approx(2.0 / 3)

    def test_summarize_empty(self):
        summary = summarize_improvements({})
        assert summary["n_tasks"] == 0

    def test_pairwise_win_rate(self):
        store = PipelineStore()
        for task, xgb_score, rf_score in [("t1", 0.9, 0.8), ("t2", 0.7, 0.75), ("t3", 0.6, 0.5)]:
            store.add(_document(task=task, score=xgb_score, estimator="xgb"))
            store.add(_document(task=task, score=rf_score, estimator="rf"))
        result = pairwise_win_rate(store, "estimator", "xgb", "rf")
        assert result["n_tasks"] == 3
        assert result["win_rate_a"] == pytest.approx(2.0 / 3)
        assert result["win_rate_b"] == pytest.approx(1.0 / 3)

    def test_pairwise_win_rate_ties_split(self):
        store = PipelineStore()
        store.add(_document(task="t", score=0.5, tuner="a"))
        store.add(_document(task="t", score=0.5, tuner="b"))
        result = pairwise_win_rate(store, "tuner", "a", "b")
        assert result["win_rate_a"] == pytest.approx(0.5)

    def test_pairwise_win_rate_requires_common_tasks(self):
        store = PipelineStore()
        store.add(_document(task="t1", estimator="xgb"))
        store.add(_document(task="t2", estimator="rf"))
        with pytest.raises(ValueError):
            pairwise_win_rate(store, "estimator", "xgb", "rf")
