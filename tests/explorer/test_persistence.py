"""Tests for the durable pipeline store (JSONL segment log)."""

import json
import os
import threading

import numpy as np
import pytest

from repro.explorer import PersistentPipelineStore, StoreCorruptionError
from repro.explorer.persistence import SegmentLog


def _document(task="task_a", template="xgb", score=0.5, **extra):
    document = {"task_name": task, "template_name": template, "score": score}
    document.update(extra)
    return document


def _segments(path):
    return sorted(name for name in os.listdir(path) if name.startswith("segment-"))


def _manifest(path):
    with open(os.path.join(path, "MANIFEST")) as stream:
        return [line.strip() for line in stream if line.strip()]


class TestPersistentStoreBasics:
    def test_documents_survive_reopen(self, tmp_path):
        path = tmp_path / "store"
        store = PersistentPipelineStore(path)
        for index in range(5):
            store.add(_document(task="t{}".format(index % 2), score=index / 10.0))
        store.close()

        reloaded = PersistentPipelineStore(path)
        assert len(reloaded) == 5
        assert [doc["score"] for doc in reloaded] == [doc["score"] for doc in store]
        assert reloaded.tasks() == ["t0", "t1"]

    def test_numpy_values_round_trip_as_native_types(self, tmp_path):
        store = PersistentPipelineStore(tmp_path / "store")
        store.add(_document(
            score=np.float64(0.75),
            hyperparameters={"('step', 'depth')": np.int64(3), "w": np.asarray([1.0, 2.0])},
        ))
        store.close()
        reloaded = PersistentPipelineStore(tmp_path / "store")
        document = next(iter(reloaded))
        assert document["score"] == 0.75 and type(document["score"]) is float
        assert document["hyperparameters"]["('step', 'depth')"] == 3
        assert type(document["hyperparameters"]["('step', 'depth')"]) is int
        assert document["hyperparameters"]["w"] == [1.0, 2.0]

    def test_add_is_validated_like_the_memory_store(self, tmp_path):
        store = PersistentPipelineStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.add({"task_name": "t"})
        assert len(store) == 0
        # the rejected document never reached the log
        reloaded = PersistentPipelineStore(tmp_path / "store")
        assert len(reloaded) == 0

    def test_queries_match_memory_store_semantics(self, tmp_path):
        store = PersistentPipelineStore(tmp_path / "store")
        store.add(_document(score=0.4))
        store.add(_document(score=None, error="boom"))
        assert store.scores_for_task("task_a") == [0.4]
        assert len(store.scores_for_task("task_a", include_failed=True)) == 2
        assert len(store.find(task_name="task_a", template_name="xgb")) == 2


class TestSegmentRotationAndRepair:
    def test_rotation_creates_multiple_segments_in_order(self, tmp_path):
        path = tmp_path / "store"
        store = PersistentPipelineStore(path, max_segment_bytes=120)
        for index in range(12):
            store.add(_document(score=float(index)))
        store.close()
        assert len(_segments(path)) > 1
        assert _manifest(path) == _segments(path)
        reloaded = PersistentPipelineStore(path, max_segment_bytes=120)
        assert [doc["score"] for doc in reloaded] == [float(i) for i in range(12)]

    def test_torn_final_line_is_repaired(self, tmp_path):
        path = tmp_path / "store"
        store = PersistentPipelineStore(path)
        store.add(_document(score=0.1))
        store.add(_document(score=0.2))
        store.close()
        segment = os.path.join(path, _manifest(path)[-1])
        with open(segment, "ab") as stream:
            stream.write(b'{"task_name": "torn", "templ')  # crash mid-write

        reloaded = PersistentPipelineStore(path)
        assert [doc["score"] for doc in reloaded] == [0.1, 0.2]
        # the torn bytes are gone and appending works cleanly afterwards
        reloaded.add(_document(score=0.3))
        reloaded.close()
        again = PersistentPipelineStore(path)
        assert [doc["score"] for doc in again] == [0.1, 0.2, 0.3]

    def test_missing_final_newline_is_completed(self, tmp_path):
        path = tmp_path / "store"
        store = PersistentPipelineStore(path)
        store.add(_document(score=0.1))
        store.close()
        segment = os.path.join(path, _manifest(path)[-1])
        with open(segment, "rb+") as stream:
            stream.seek(-1, os.SEEK_END)
            stream.truncate()  # the line landed but its newline did not

        reloaded = PersistentPipelineStore(path)
        reloaded.add(_document(score=0.2))
        reloaded.close()
        assert [d["score"] for d in PersistentPipelineStore(path)] == [0.1, 0.2]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "store"
        store = PersistentPipelineStore(path)
        for index in range(3):
            store.add(_document(score=float(index)))
        store.close()
        segment = os.path.join(path, _manifest(path)[-1])
        lines = open(segment).read().splitlines()
        lines[1] = lines[1][:10]  # corrupt a non-final line
        with open(segment, "w") as stream:
            stream.write("\n".join(lines) + "\n")
        with pytest.raises(StoreCorruptionError):
            PersistentPipelineStore(path)


class TestCompactionAndOrphans:
    def _fragmented_store(self, path, n=20):
        # tiny segments -> many files
        store = PersistentPipelineStore(path, max_segment_bytes=80)
        for index in range(n):
            store.add(_document(score=float(index)))
        store.close()
        return _segments(path)

    def test_compaction_on_open_merges_fragments(self, tmp_path):
        path = tmp_path / "store"
        before = self._fragmented_store(path)
        assert len(before) >= 4
        # reopening with the default (large) threshold compacts the log
        reloaded = PersistentPipelineStore(path)
        after = _segments(path)
        assert len(after) < len(before)
        assert _manifest(path) == after
        assert [doc["score"] for doc in reloaded] == [float(i) for i in range(20)]
        # none of the fragment files survive
        assert not set(before) & set(after)

    def test_compaction_skipped_when_it_would_not_shrink(self, tmp_path):
        path = tmp_path / "store"
        before = self._fragmented_store(path)
        # same tiny threshold: repacking cannot reduce the file count
        PersistentPipelineStore(path, max_segment_bytes=80)
        assert _segments(path) == before

    def test_orphan_segments_are_removed_not_loaded(self, tmp_path):
        path = tmp_path / "store"
        store = PersistentPipelineStore(path)
        store.add(_document(score=0.5))
        store.close()
        orphan = os.path.join(path, "segment-999999.jsonl")
        with open(orphan, "w") as stream:
            stream.write(json.dumps(_document(task="ghost", score=9.9)) + "\n")
        reloaded = PersistentPipelineStore(path)
        assert len(reloaded) == 1
        assert reloaded.tasks() == ["task_a"]
        assert not os.path.exists(orphan)

    def test_adopts_pre_manifest_layout(self, tmp_path):
        path = tmp_path / "store"
        os.makedirs(path)
        with open(os.path.join(path, "segment-000000.jsonl"), "w") as stream:
            stream.write(json.dumps(_document(score=0.7)) + "\n")
        store = PersistentPipelineStore(path)
        assert [doc["score"] for doc in store] == [0.7]
        assert _manifest(path)


class TestConcurrentWriters:
    def test_no_lost_or_duplicated_records_under_contention(self, tmp_path):
        """Satellite: N threads appending while a reader queries."""
        path = tmp_path / "store"
        store = PersistentPipelineStore(path, max_segment_bytes=512)
        n_threads, per_thread = 8, 40
        start = threading.Barrier(n_threads + 1)
        stop_reader = threading.Event()
        reader_errors = []

        def writer(thread_id):
            start.wait()
            for index in range(per_thread):
                store.add(_document(
                    task="task_{}".format(thread_id % 3),
                    score=float(index),
                    writer=thread_id,
                    sequence=thread_id * per_thread + index,
                ))

        def reader():
            start.wait()
            while not stop_reader.is_set():
                try:
                    store.find(task_name="task_0")
                    store.tasks()
                    store.scores_for_task("task_1")
                except Exception as error:  # noqa: BLE001 - collected for the assert
                    reader_errors.append(error)
                    return

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(n_threads)]
        observer = threading.Thread(target=reader)
        for thread in threads + [observer]:
            thread.start()
        for thread in threads:
            thread.join()
        stop_reader.set()
        observer.join()
        store.close()

        assert not reader_errors
        total = n_threads * per_thread
        assert len(store) == total
        # every record exactly once, in memory and on disk
        assert sorted(doc["sequence"] for doc in store) == list(range(total))
        reloaded = PersistentPipelineStore(path, max_segment_bytes=512)
        assert sorted(doc["sequence"] for doc in reloaded) == list(range(total))
        # disk order equals memory order (appends are atomic under the lock)
        assert [doc["sequence"] for doc in reloaded] == [doc["sequence"] for doc in store]

    def test_indexes_match_a_full_rescan(self, tmp_path):
        path = tmp_path / "store"
        store = PersistentPipelineStore(path)

        def writer(thread_id):
            for index in range(30):
                store.add(_document(
                    task="task_{}".format((thread_id + index) % 4),
                    template="tpl_{}".format(index % 2),
                    score=float(index),
                ))

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for task_name in store.tasks():
            indexed = store.find(task_name=task_name)
            rescan = [doc for doc in store if doc.get("task_name") == task_name]
            assert indexed == rescan
        for template_name in store.templates():
            indexed = store.find(template_name=template_name)
            rescan = [doc for doc in store if doc.get("template_name") == template_name]
            assert indexed == rescan


class TestCrossProcessSafety:
    def test_second_open_degrades_to_shared_mode(self, tmp_path):
        """While a handle is live, a second open must not repair/compact."""
        path = tmp_path / "store"
        first = PersistentPipelineStore(path, max_segment_bytes=80)
        for index in range(12):
            first.add(_document(score=float(index)))
        fragments = _segments(path)
        assert len(fragments) >= 3

        # first is still open: the second opener is not exclusive, so the
        # fragmented layout survives (no compaction under its feet) ...
        second = PersistentPipelineStore(path)
        assert _segments(path) == fragments
        assert [doc["score"] for doc in second] == [float(i) for i in range(12)]
        # ... and interleaved appends through both handles all land
        first.add(_document(score=100.0))
        second.add(_document(score=200.0))
        first.close()
        second.close()
        merged = PersistentPipelineStore(path)
        assert sorted(doc["score"] for doc in merged)[-2:] == [100.0, 200.0]
        assert len(merged) == 14

    def test_shared_mode_append_repairs_a_crashed_tail_first(self, tmp_path):
        path = tmp_path / "store"
        first = PersistentPipelineStore(path)
        first.add(_document(score=0.1))
        segment = os.path.join(path, _manifest(path)[-1])
        with open(segment, "ab") as stream:
            stream.write(b'{"torn')  # crash artifact from some earlier process

        second = PersistentPipelineStore(path)  # shared: no open-time repair
        second.add(_document(score=0.2))
        first.close()
        second.close()
        reloaded = PersistentPipelineStore(path)
        assert [doc["score"] for doc in reloaded] == [0.1, 0.2]

    def test_close_releases_exclusivity(self, tmp_path):
        path = tmp_path / "store"
        store = PersistentPipelineStore(path, max_segment_bytes=80)
        for index in range(12):
            store.add(_document(score=float(index)))
        fragments = _segments(path)
        store.close()
        # with the handle closed, the next open is exclusive and compacts
        PersistentPipelineStore(path)
        assert len(_segments(path)) < len(fragments)


class TestSegmentLogValidation:
    def test_rejects_unknown_durability(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentLog(tmp_path / "log", durability="paranoid")

    def test_append_requires_open(self, tmp_path):
        log = SegmentLog(tmp_path / "log")
        with pytest.raises(RuntimeError):
            log.append({"a": 1})

    def test_fsync_durability_appends(self, tmp_path):
        log = SegmentLog(tmp_path / "log", durability="fsync")
        assert log.open() == []
        log.append({"a": 1})
        log.close()
        reopened = SegmentLog(tmp_path / "log")
        assert reopened.open() == [{"a": 1}]
