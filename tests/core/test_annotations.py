"""Tests for the primitive annotation format (MLPrimitives specification)."""

import json

import pytest

from repro.core.annotations import (
    AnnotationError,
    HyperparamSpec,
    PrimitiveAnnotation,
)
from repro.learners.preprocessing import StandardScaler
from repro.learners.timeseries import regression_errors


def _scaler_annotation(**overrides):
    payload = dict(
        name="test.StandardScaler",
        primitive=StandardScaler,
        category="preprocessor",
        source="scikit-learn",
        fit={"method": "fit", "args": [{"name": "X", "type": "X"}]},
        produce={
            "method": "transform",
            "args": [{"name": "X", "type": "X"}],
            "output": [{"name": "X", "type": "X"}],
        },
        hyperparameters={"tunable": [
            HyperparamSpec("with_mean", "bool", True),
        ]},
    )
    payload.update(overrides)
    return PrimitiveAnnotation(**payload)


class TestHyperparamSpec:
    def test_int_spec_roundtrip(self):
        spec = HyperparamSpec("n", "int", 5, range=(1, 10))
        assert HyperparamSpec.from_dict(spec.to_dict()) == spec

    def test_float_requires_range(self):
        with pytest.raises(AnnotationError):
            HyperparamSpec("alpha", "float", 0.5)

    def test_inverted_range_rejected(self):
        with pytest.raises(AnnotationError):
            HyperparamSpec("n", "int", 5, range=(10, 1))

    def test_default_outside_range_rejected(self):
        with pytest.raises(AnnotationError):
            HyperparamSpec("n", "int", 50, range=(1, 10))

    def test_categorical_requires_values(self):
        with pytest.raises(AnnotationError):
            HyperparamSpec("kind", "categorical", "a")

    def test_categorical_default_must_be_member(self):
        with pytest.raises(AnnotationError):
            HyperparamSpec("kind", "categorical", "z", values=["a", "b"])

    def test_bool_default_must_be_boolean(self):
        with pytest.raises(AnnotationError):
            HyperparamSpec("flag", "bool", "yes")

    def test_unknown_type_rejected(self):
        with pytest.raises(AnnotationError):
            HyperparamSpec("x", "complex", 1, range=(0, 2))

    def test_tuple_categorical_values_allowed(self):
        spec = HyperparamSpec("layers", "categorical", (32,), values=[(32,), (64, 32)])
        assert spec.default == (32,)

    def test_empty_name_rejected(self):
        with pytest.raises(AnnotationError):
            HyperparamSpec("", "int", 1, range=(0, 2))


class TestPrimitiveAnnotation:
    def test_valid_annotation_builds(self):
        annotation = _scaler_annotation()
        assert annotation.name == "test.StandardScaler"
        assert annotation.category == "preprocessor"

    def test_invalid_category_rejected(self):
        with pytest.raises(AnnotationError):
            _scaler_annotation(category="wizard")

    def test_missing_source_rejected(self):
        with pytest.raises(AnnotationError):
            _scaler_annotation(source="")

    def test_non_callable_primitive_rejected(self):
        with pytest.raises(AnnotationError):
            _scaler_annotation(primitive="not callable")

    def test_produce_requires_output(self):
        with pytest.raises(AnnotationError):
            _scaler_annotation(produce={"method": "transform", "args": [], "output": []})

    def test_malformed_args_rejected(self):
        with pytest.raises(AnnotationError):
            _scaler_annotation(produce={
                "method": "transform",
                "args": [{"name": "X"}],
                "output": [{"name": "X", "type": "X"}],
            })

    def test_duplicate_tunable_names_rejected(self):
        with pytest.raises(AnnotationError):
            _scaler_annotation(hyperparameters={"tunable": [
                HyperparamSpec("with_mean", "bool", True),
                HyperparamSpec("with_mean", "bool", False),
            ]})

    def test_fixed_and_tunable_overlap_rejected(self):
        with pytest.raises(AnnotationError):
            _scaler_annotation(hyperparameters={
                "fixed": {"with_mean": True},
                "tunable": [HyperparamSpec("with_mean", "bool", True)],
            })

    def test_tunable_defaults(self):
        annotation = _scaler_annotation()
        assert annotation.tunable_defaults() == {"with_mean": True}

    def test_accessors(self):
        annotation = _scaler_annotation()
        assert annotation.fit_args[0]["type"] == "X"
        assert annotation.produce_args[0]["type"] == "X"
        assert annotation.produce_output[0]["type"] == "X"

    def test_function_primitive_without_fit(self):
        annotation = PrimitiveAnnotation(
            name="test.regression_errors",
            primitive=regression_errors,
            category="postprocessor",
            source="MLPrimitives (custom)",
            produce={
                "method": None,
                "args": [{"name": "y_true", "type": "y"}, {"name": "y_pred", "type": "y_hat"}],
                "output": [{"name": "errors", "type": "errors"}],
            },
        )
        assert annotation.fit is None
        assert annotation.fit_args == []

    def test_to_dict_is_json_serializable(self):
        annotation = _scaler_annotation()
        payload = json.loads(annotation.to_json())
        assert payload["name"] == "test.StandardScaler"
        assert payload["hyperparameters"]["tunable"][0]["name"] == "with_mean"

    def test_from_dict_resolves_primitive_by_path(self):
        annotation = _scaler_annotation()
        rebuilt = PrimitiveAnnotation.from_dict(annotation.to_dict())
        assert rebuilt.primitive is StandardScaler
        assert rebuilt.name == annotation.name

    def test_from_dict_with_explicit_primitive(self):
        annotation = _scaler_annotation()
        rebuilt = PrimitiveAnnotation.from_dict(annotation.to_dict(), primitive=StandardScaler)
        assert rebuilt.primitive is StandardScaler
