"""Tests for templates and hypertemplates (paper Section IV-A, Figure 4)."""

import pytest

from repro.core.annotations import HyperparamSpec
from repro.core.template import ConditionalHyperparam, Hypertemplate, Template
from repro.learners.metrics import accuracy_score

PRIMITIVES = [
    "mlprimitives.custom.preprocessing.ClassEncoder",
    "sklearn.impute.SimpleImputer",
    "sklearn.preprocessing.StandardScaler",
    "xgboost.XGBClassifier",
    "mlprimitives.custom.preprocessing.ClassDecoder",
]


class TestTemplate:
    def test_tunable_space_collects_step_hyperparameters(self):
        template = Template("clf", PRIMITIVES)
        space = template.get_tunable_hyperparameters()
        assert ("xgboost.XGBClassifier#0", "n_estimators") in space
        assert ("sklearn.impute.SimpleImputer#0", "strategy") in space

    def test_init_params_remove_hyperparameters_from_space(self):
        template = Template(
            "clf", PRIMITIVES,
            init_params={"xgboost.XGBClassifier": {"n_estimators": 10}},
        )
        space = template.get_tunable_hyperparameters()
        assert ("xgboost.XGBClassifier#0", "n_estimators") not in space
        assert ("xgboost.XGBClassifier#0", "max_depth") in space

    def test_default_hyperparameters_match_spec_defaults(self):
        template = Template("clf", PRIMITIVES)
        defaults = template.default_hyperparameters()
        space = template.get_tunable_hyperparameters()
        assert set(defaults) == set(space)
        assert defaults[("xgboost.XGBClassifier#0", "max_depth")] == 3

    def test_build_pipeline_applies_hyperparameters(self, classification_data):
        X, y = classification_data
        template = Template("clf", PRIMITIVES)
        pipeline = template.build_pipeline({("xgboost.XGBClassifier#0", "n_estimators"): 5})
        values = pipeline.get_hyperparameters()["xgboost.XGBClassifier#0"]
        assert values["n_estimators"] == 5
        pipeline.fit(X=X, y=y)
        assert accuracy_score(y, pipeline.predict(X=X)) > 0.8

    def test_build_pipeline_with_defaults(self):
        template = Template("clf", PRIMITIVES)
        pipeline = template.build_pipeline()
        assert pipeline.primitives == PRIMITIVES

    def test_to_dict_round_trip(self):
        template = Template(
            "clf", PRIMITIVES,
            init_params={"xgboost.XGBClassifier": {"n_estimators": 10}},
            task_types=[("single_table", "classification")],
        )
        rebuilt = Template.from_dict(template.to_dict())
        assert rebuilt.name == template.name
        assert rebuilt.primitives == template.primitives
        assert rebuilt.task_types == [("single_table", "classification")]

    def test_tunable_override_used_verbatim(self):
        override = {"xgboost.XGBClassifier#0": {
            "n_estimators": HyperparamSpec("n_estimators", "int", 5, range=(2, 10)),
        }}
        template = Template("clf", PRIMITIVES, tunable=override)
        space = template.get_tunable_hyperparameters()
        assert list(space) == [("xgboost.XGBClassifier#0", "n_estimators")]


class TestConditionalHyperparam:
    def test_requires_values(self):
        with pytest.raises(ValueError):
            ConditionalHyperparam("step", "kernel", [])

    def test_subspace_must_contain_specs(self):
        with pytest.raises(TypeError):
            ConditionalHyperparam("step", "kernel", ["rbf"], subspaces={"rbf": ["not a spec"]})

    def test_missing_subspace_defaults_to_empty(self):
        conditional = ConditionalHyperparam("step", "kernel", ["rbf", "linear"])
        assert conditional.subspaces == {"rbf": [], "linear": []}


class TestHypertemplate:
    """Reproduces the structure of paper Figure 4: conditionals expand to templates."""

    def _hypertemplate(self):
        # two conditional hyperparameters with 2 values each -> 4 templates,
        # exactly like the example in paper Figure 4
        conditional_q = ConditionalHyperparam(
            "sklearn.impute.SimpleImputer#0", "strategy", ["mean", "median"],
            subspaces={
                "mean": [],
                "median": [HyperparamSpec("fill_value", "float", 0.0, range=(-1.0, 1.0))],
            },
        )
        conditional_s = ConditionalHyperparam(
            "sklearn.preprocessing.StandardScaler#0", "with_mean", [True, False],
        )
        return Hypertemplate("hyper_clf", PRIMITIVES, [conditional_q, conditional_s])

    def test_n_templates(self):
        assert self._hypertemplate().n_templates() == 4

    def test_derive_templates_count_and_names(self):
        templates = self._hypertemplate().derive_templates()
        assert len(templates) == 4
        assert len({t.name for t in templates}) == 4

    def test_conditional_values_fixed_in_derived_templates(self):
        templates = self._hypertemplate().derive_templates()
        strategies = {t.init_params["sklearn.impute.SimpleImputer#0"]["strategy"]
                      for t in templates}
        assert strategies == {"mean", "median"}

    def test_subspace_added_only_for_matching_value(self):
        templates = self._hypertemplate().derive_templates()
        for template in templates:
            strategy = template.init_params["sklearn.impute.SimpleImputer#0"]["strategy"]
            space = template.get_tunable_hyperparameters()
            has_fill = ("sklearn.impute.SimpleImputer#0", "fill_value") in space
            assert has_fill == (strategy == "median")

    def test_conditional_hyperparameter_not_tunable_in_derived_template(self):
        templates = self._hypertemplate().derive_templates()
        for template in templates:
            space = template.get_tunable_hyperparameters()
            assert ("sklearn.impute.SimpleImputer#0", "strategy") not in space

    def test_derived_templates_build_working_pipelines(self, classification_data):
        X, y = classification_data
        template = self._hypertemplate().derive_templates()[0]
        pipeline = template.build_pipeline({("xgboost.XGBClassifier#0", "n_estimators"): 5})
        pipeline.fit(X=X, y=y)
        assert accuracy_score(y, pipeline.predict(X=X)) > 0.8

    def test_requires_conditionals(self):
        with pytest.raises(ValueError):
            Hypertemplate("bad", PRIMITIVES, [])
