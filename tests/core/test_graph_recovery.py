"""Tests for computational-graph recovery (paper Algorithm 1, Figure 3)."""

import networkx as nx
import pytest

from repro.core.graph import SINK, SOURCE, InvalidPipelineError, edge_data_items, recover_graph, topological_order
from repro.core.pipeline import MLPipeline
from repro.core.registry import load_primitive
from repro.core.step import PipelineStep


def _steps(*names, **kwargs):
    return [PipelineStep(load_primitive(name), name="{}#{}".format(name, i))
            for i, name in enumerate(names)]


class TestRecoverGraph:
    def test_simple_chain(self):
        steps = _steps(
            "sklearn.impute.SimpleImputer",
            "sklearn.preprocessing.StandardScaler",
            "xgboost.XGBRegressor",
        )
        graph = recover_graph(steps, inputs=["X", "y"])
        assert graph.number_of_nodes() == len(steps) + 2
        # X flows imputer -> scaler -> estimator
        data_items = edge_data_items(graph)
        assert (steps[0].name, steps[1].name, "X") in data_items
        assert (steps[1].name, steps[2].name, "X") in data_items

    def test_source_provides_unclaimed_inputs(self):
        steps = _steps("sklearn.impute.SimpleImputer", "xgboost.XGBRegressor")
        graph = recover_graph(steps, inputs=["X", "y"])
        assert (SOURCE, steps[1].name) in {(u, v) for u, v, _ in edge_data_items(graph)}

    def test_sink_consumes_final_output(self):
        steps = _steps("sklearn.preprocessing.StandardScaler")
        graph = recover_graph(steps, inputs=["X"])
        assert (steps[0].name, SINK, "X") in edge_data_items(graph)

    def test_result_is_a_dag(self):
        steps = _steps(
            "mlprimitives.custom.preprocessing.ClassEncoder",
            "sklearn.impute.SimpleImputer",
            "xgboost.XGBClassifier",
            "mlprimitives.custom.preprocessing.ClassDecoder",
        )
        graph = recover_graph(steps, inputs=["X", "y"])
        assert nx.is_directed_acyclic_graph(graph)

    def test_topological_order_respects_pipeline_order(self):
        steps = _steps(
            "sklearn.impute.SimpleImputer",
            "sklearn.preprocessing.StandardScaler",
            "xgboost.XGBRegressor",
        )
        graph = recover_graph(steps, inputs=["X", "y"])
        order = topological_order(graph)
        assert order.index(steps[0].name) < order.index(steps[2].name)

    def test_closest_producer_wins(self):
        # both the imputer and the scaler produce X; the estimator must read
        # it from the scaler (the nearest upstream producer)
        steps = _steps(
            "sklearn.impute.SimpleImputer",
            "sklearn.preprocessing.StandardScaler",
            "xgboost.XGBRegressor",
        )
        graph = recover_graph(steps, inputs=["X", "y"])
        consumers_of_imputer = [v for u, v, _ in edge_data_items(graph) if u == steps[0].name]
        assert steps[2].name not in consumers_of_imputer

    def test_unsatisfied_input_raises(self):
        steps = _steps("xgboost.XGBClassifier")
        with pytest.raises(InvalidPipelineError, match="Unsatisfied"):
            recover_graph(steps, inputs=["X"])  # y never provided

    def test_isolated_step_raises(self):
        # find_anomalies consumes errors, which nothing here produces, and the
        # scaler's X output is never consumed downstream of it
        steps = _steps(
            "sklearn.preprocessing.StandardScaler",
            "mlprimitives.custom.timeseries_anomalies.find_anomalies",
        )
        with pytest.raises(InvalidPipelineError):
            recover_graph(steps, inputs=["X"], outputs=["anomalies"])

    def test_empty_pipeline_raises(self):
        with pytest.raises(InvalidPipelineError):
            recover_graph([], inputs=["X"])

    def test_optional_inputs_do_not_invalidate(self):
        steps = _steps("featuretools.dfs", "sklearn.linear_model.Ridge")
        graph = recover_graph(steps, inputs=["X", "y"])
        assert graph.number_of_nodes() == 4


class TestPaperFigure3Graphs:
    """The two pipelines shown in paper Figure 3."""

    def test_orion_graph_structure(self):
        pipeline = MLPipeline([
            "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
            "sklearn.impute.SimpleImputer",
            "sklearn.preprocessing.MinMaxScaler",
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
            "keras.Sequential.LSTMTimeSeriesRegressor",
            "mlprimitives.custom.timeseries_anomalies.regression_errors",
            "mlprimitives.custom.timeseries_anomalies.find_anomalies",
        ])
        graph = pipeline.graph(inputs=["X"])
        edges = {(u.split(".")[-1].split("#")[0], v.split(".")[-1].split("#")[0], d)
                 for u, v, d in edge_data_items(graph)}
        # the key data-flow edges called out in the paper's figure
        assert ("rolling_window_sequences", "LSTMTimeSeriesRegressor", "y") in edges
        assert ("rolling_window_sequences", "regression_errors", "y") in edges
        assert ("LSTMTimeSeriesRegressor", "regression_errors", "y_hat") in edges
        assert ("regression_errors", "find_anomalies", "errors") in edges

    def test_text_classification_graph_structure(self):
        pipeline = MLPipeline([
            "mlprimitives.custom.counters.UniqueCounter",
            "mlprimitives.custom.text.TextCleaner",
            "mlprimitives.custom.counters.VocabularyCounter",
            "keras.preprocessing.text.Tokenizer",
            "keras.preprocessing.sequence.pad_sequences",
            "keras.Sequential.LSTMTextClassifier",
        ])
        graph = pipeline.graph(inputs=["X", "y"])
        edges = {(u.split(".")[-1].split("#")[0], v.split(".")[-1].split("#")[0], d)
                 for u, v, d in edge_data_items(graph)}
        assert ("UniqueCounter", "LSTMTextClassifier", "classes") in edges
        assert ("VocabularyCounter", "LSTMTextClassifier", "vocabulary_size") in edges
        assert ("pad_sequences", "LSTMTextClassifier", "X") in edges
        assert ("TextCleaner", "VocabularyCounter", "X") in edges
