"""Tests for pipeline steps and the execution context."""

import numpy as np
import pytest

from repro.core.context import Context
from repro.core.registry import load_primitive
from repro.core.step import PipelineStep, StepExecutionError


class TestContext:
    def test_record_stores_values_and_history(self):
        context = Context({"X": 1})
        context.record("step_a", {"y": 2})
        assert context["y"] == 2
        assert context.history == [("step_a", "y")]

    def test_require_returns_requested_values(self):
        context = Context({"X": 1, "y": 2})
        assert context.require(["X"]) == {"X": 1}

    def test_require_missing_raises_with_available_keys(self):
        context = Context({"X": 1})
        with pytest.raises(KeyError, match="available"):
            context.require(["X", "graph"])

    def test_copy_preserves_history(self):
        context = Context()
        context.record("a", {"X": 1})
        duplicate = context.copy()
        assert duplicate.history == context.history
        duplicate.record("b", {"y": 2})
        assert len(context.history) == 1


class TestPipelineStep:
    def test_transformer_fit_and_produce(self, rng):
        step = PipelineStep(load_primitive("sklearn.preprocessing.StandardScaler"))
        context = Context({"X": rng.normal(loc=5.0, size=(50, 3))})
        step.fit(context)
        outputs = step.produce(context)
        assert set(outputs) == {"X"}
        assert abs(outputs["X"].mean()) < 1e-9

    def test_estimator_fit_and_predict(self, classification_data):
        X, y = classification_data
        step = PipelineStep(
            load_primitive("xgboost.XGBClassifier"),
            hyperparameters={"n_estimators": 5, "random_state": 0},
        )
        context = Context({"X": X, "y": y})
        step.fit(context)
        outputs = step.produce(context)
        assert outputs["y"].shape == y.shape

    def test_function_primitive_receives_hyperparameters(self):
        step = PipelineStep(
            load_primitive("mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences"),
            hyperparameters={"window_size": 5},
        )
        context = Context({"X": np.arange(40, dtype=float)})
        outputs = step.produce(context)
        assert outputs["X"].shape[1] == 5
        assert set(outputs) == {"X", "y", "index", "target_index"}

    def test_missing_input_raises_by_default(self):
        step = PipelineStep(load_primitive("sklearn.preprocessing.StandardScaler"))
        with pytest.raises(StepExecutionError, match="requires"):
            step.fit(Context({}))

    def test_missing_input_skipped_when_requested(self, classification_data):
        X, y = classification_data
        step = PipelineStep(load_primitive("mlprimitives.custom.preprocessing.ClassEncoder"))
        assert step.produce(Context({"X": X}), skip_if_missing=True) is None

    def test_optional_input_omitted_silently(self, rng):
        step = PipelineStep(load_primitive("featuretools.dfs"))
        context = Context({"X": rng.normal(size=(10, 3))})
        outputs = step.produce(context)
        assert outputs["X"].shape == (10, 3)

    def test_multiple_outputs_mapped_by_type(self):
        step = PipelineStep(load_primitive("mlprimitives.custom.preprocessing.ClassEncoder"))
        context = Context({"y": np.array(["a", "b", "a"])})
        step.fit(context)
        outputs = step.produce(context)
        assert set(outputs) == {"y", "classes"}

    def test_output_renaming(self, rng):
        step = PipelineStep(
            load_primitive("sklearn.preprocessing.StandardScaler"),
            output_names={"X": "X_scaled"},
        )
        context = Context({"X": rng.normal(size=(20, 2))})
        step.fit(context)
        assert "X_scaled" in step.produce(context)

    def test_input_renaming(self, rng):
        step = PipelineStep(
            load_primitive("sklearn.preprocessing.StandardScaler"),
            input_names={"X": "features"},
        )
        context = Context({"features": rng.normal(size=(20, 2))})
        step.fit(context)
        outputs = step.produce(context)
        assert outputs["X"].shape == (20, 2)

    def test_set_hyperparameters_resets_instance(self, classification_data):
        X, y = classification_data
        step = PipelineStep(
            load_primitive("xgboost.XGBClassifier"),
            hyperparameters={"n_estimators": 3},
        )
        step.fit(Context({"X": X, "y": y}))
        assert step.instance is not None
        step.set_hyperparameters({"n_estimators": 4})
        assert step._instance is None

    def test_set_unknown_hyperparameter_rejected(self):
        step = PipelineStep(load_primitive("xgboost.XGBClassifier"))
        with pytest.raises(ValueError):
            step.set_hyperparameters({"bogus_knob": 1})

    def test_get_tunable_hyperparameters(self):
        step = PipelineStep(load_primitive("xgboost.XGBClassifier"))
        tunables = step.get_tunable_hyperparameters()
        assert "n_estimators" in tunables
        assert "learning_rate" in tunables

    def test_failing_primitive_wrapped_in_step_error(self):
        step = PipelineStep(load_primitive("sklearn.decomposition.PCA"),
                            hyperparameters={"n_components": 0})
        with pytest.raises(StepExecutionError, match="failed during fit"):
            step.fit(Context({"X": np.ones((5, 3))}))

    def test_default_hyperparameters_merge_fixed_and_tunable(self):
        step = PipelineStep(load_primitive("keras.preprocessing.sequence.pad_sequences"))
        values = step.get_hyperparameters()
        assert values["maxlen"] == 50
        assert values["padding"] == "pre"
