"""Tests for the primitive registry and the curated catalog (paper Table I)."""

import pytest

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog import build_catalog
from repro.core.registry import (
    PrimitiveNotFoundError,
    PrimitiveRegistry,
    get_default_registry,
    load_primitive,
)
from repro.learners.preprocessing import MinMaxScaler


def _annotation(name="test.scaler", source="scikit-learn"):
    return PrimitiveAnnotation(
        name=name,
        primitive=MinMaxScaler,
        category="preprocessor",
        source=source,
        fit={"method": "fit", "args": [{"name": "X", "type": "X"}]},
        produce={
            "method": "transform",
            "args": [{"name": "X", "type": "X"}],
            "output": [{"name": "X", "type": "X"}],
        },
    )


class TestPrimitiveRegistry:
    def test_register_and_get(self):
        registry = PrimitiveRegistry()
        registry.register(_annotation())
        assert registry.get("test.scaler").primitive is MinMaxScaler

    def test_duplicate_registration_rejected(self):
        registry = PrimitiveRegistry()
        registry.register(_annotation())
        with pytest.raises(ValueError):
            registry.register(_annotation())

    def test_register_requires_annotation_type(self):
        with pytest.raises(TypeError):
            PrimitiveRegistry().register({"name": "x"})

    def test_missing_primitive_raises_with_suggestion(self):
        registry = PrimitiveRegistry()
        registry.register(_annotation("sklearn.preprocessing.MinMaxScaler"))
        with pytest.raises(PrimitiveNotFoundError, match="did you mean"):
            registry.get("other.MinMaxScaler")

    def test_contains_and_len(self):
        registry = PrimitiveRegistry()
        registry.register(_annotation())
        assert "test.scaler" in registry
        assert len(registry) == 1

    def test_unregister(self):
        registry = PrimitiveRegistry()
        registry.register(_annotation())
        registry.unregister("test.scaler")
        assert "test.scaler" not in registry

    def test_search_by_source(self):
        registry = PrimitiveRegistry()
        registry.register(_annotation("a.one", source="scikit-learn"))
        registry.register(_annotation("b.two", source="Keras"))
        assert [a.name for a in registry.search(source="Keras")] == ["b.two"]

    def test_search_by_category(self):
        registry = PrimitiveRegistry()
        registry.register(_annotation())
        assert len(registry.search(category="preprocessor")) == 1
        assert registry.search(category="estimator") == []

    def test_count_by_source(self):
        registry = PrimitiveRegistry()
        registry.register(_annotation("a.one", source="scikit-learn"))
        registry.register(_annotation("b.two", source="scikit-learn"))
        registry.register(_annotation("c.three", source="Keras"))
        assert registry.count_by_source() == {"scikit-learn": 2, "Keras": 1}

    def test_dump_json(self, tmp_path):
        registry = PrimitiveRegistry()
        registry.register(_annotation())
        path = tmp_path / "catalog.json"
        registry.dump_json(path)
        assert path.exists()
        assert "test.scaler" in path.read_text()


class TestCuratedCatalog:
    """Structural checks over the Table I catalog."""

    @pytest.fixture(scope="class")
    def catalog(self):
        return build_catalog()

    def test_catalog_size(self, catalog):
        assert len(catalog) >= 55

    def test_covers_all_expected_sources(self, catalog):
        sources = set(catalog.count_by_source())
        expected = {
            "scikit-learn", "XGBoost", "Keras", "MLPrimitives (custom)", "Featuretools",
            "NetworkX", "python-louvain", "OpenCV", "scikit-image", "NumPy", "LightFM",
        }
        assert expected <= sources

    def test_sklearn_is_largest_source(self, catalog):
        counts = catalog.count_by_source()
        assert counts["scikit-learn"] == max(counts.values())

    def test_covers_all_categories(self, catalog):
        categories = set(catalog.count_by_category())
        assert categories == {"preprocessor", "feature_processor", "estimator", "postprocessor"}

    def test_orion_primitives_present(self, catalog):
        # the ORION pipeline of paper Listing 1 must load verbatim
        for name in [
            "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
            "sklearn.impute.SimpleImputer",
            "sklearn.preprocessing.MinMaxScaler",
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
            "keras.Sequential.LSTMTimeSeriesRegressor",
            "mlprimitives.custom.timeseries_anomalies.regression_errors",
            "mlprimitives.custom.timeseries_anomalies.find_anomalies",
        ]:
            assert name in catalog

    def test_every_annotation_validates(self, catalog):
        for annotation in catalog:
            annotation.validate()

    def test_every_tunable_spec_has_valid_default(self, catalog):
        for annotation in catalog:
            for spec in annotation.tunable_hyperparameters:
                spec.validate()

    def test_estimators_consume_x_and_y(self, catalog):
        for annotation in catalog.search(category="estimator"):
            if annotation.fit is None:
                continue
            fit_types = {arg["type"] for arg in annotation.fit_args}
            assert "X" in fit_types or "graph" in fit_types

    def test_default_registry_is_cached(self):
        assert get_default_registry() is get_default_registry()

    def test_load_primitive_shortcut(self):
        annotation = load_primitive("xgboost.XGBClassifier")
        assert annotation.source == "XGBoost"
