"""Tests for the MLPipeline execution engine (MLBlocks)."""

import numpy as np
import pytest

from repro.core.pipeline import MLPipeline
from repro.learners.metrics import accuracy_score, r2_score


CLASSIFICATION_PRIMITIVES = [
    "mlprimitives.custom.preprocessing.ClassEncoder",
    "sklearn.impute.SimpleImputer",
    "sklearn.preprocessing.StandardScaler",
    "xgboost.XGBClassifier",
    "mlprimitives.custom.preprocessing.ClassDecoder",
]


@pytest.fixture
def fitted_pipeline(classification_data):
    X, y = classification_data
    labels = np.where(y == 1, "pos", "neg")
    pipeline = MLPipeline(
        CLASSIFICATION_PRIMITIVES,
        init_params={"xgboost.XGBClassifier": {"n_estimators": 8, "random_state": 0}},
    )
    pipeline.fit(X=X, y=labels)
    return pipeline, X, labels


class TestPipelineConstruction:
    def test_requires_primitives(self):
        with pytest.raises(ValueError):
            MLPipeline([])

    def test_steps_get_unique_names(self):
        pipeline = MLPipeline([
            "sklearn.impute.SimpleImputer",
            "sklearn.impute.SimpleImputer",
            "sklearn.linear_model.Ridge",
        ])
        names = [step.name for step in pipeline.steps]
        assert len(set(names)) == 3
        assert names[0].endswith("#0")
        assert names[1].endswith("#1")

    def test_init_params_by_primitive_name(self):
        pipeline = MLPipeline(
            ["xgboost.XGBRegressor"],
            init_params={"xgboost.XGBRegressor": {"n_estimators": 7}},
        )
        assert pipeline.steps[0].get_hyperparameters()["n_estimators"] == 7

    def test_init_params_by_step_name(self):
        pipeline = MLPipeline(
            ["sklearn.impute.SimpleImputer", "sklearn.impute.SimpleImputer",
             "sklearn.linear_model.Ridge"],
            init_params={"sklearn.impute.SimpleImputer#1": {"strategy": "median"}},
        )
        assert pipeline.steps[0].get_hyperparameters()["strategy"] == "mean"
        assert pipeline.steps[1].get_hyperparameters()["strategy"] == "median"

    def test_unknown_primitive_raises(self):
        with pytest.raises(KeyError):
            MLPipeline(["not.a.primitive"])

    def test_default_output_is_last_step_output(self):
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        assert pipeline.outputs == "y"


class TestPipelineExecution:
    def test_fit_predict_classification(self, fitted_pipeline):
        pipeline, X, labels = fitted_pipeline
        predictions = pipeline.predict(X=X)
        assert set(predictions) <= {"pos", "neg"}
        assert accuracy_score(labels, predictions) > 0.9

    def test_predict_before_fit_raises(self, classification_data):
        X, _ = classification_data
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        with pytest.raises(RuntimeError, match="fitted"):
            pipeline.predict(X=X)

    def test_fit_predict_shortcut(self, regression_data):
        X, y = regression_data
        pipeline = MLPipeline(
            ["sklearn.impute.SimpleImputer", "sklearn.preprocessing.StandardScaler",
             "sklearn.linear_model.Ridge"],
        )
        predictions = pipeline.fit_predict(X=X, y=y)
        assert r2_score(y, predictions) > 0.9

    def test_regression_pipeline_generalizes(self, rng):
        X = rng.normal(size=(200, 5))
        y = 3.0 * X[:, 0] - X[:, 2] + 0.1 * rng.normal(size=200)
        pipeline = MLPipeline(
            ["featuretools.dfs", "sklearn.impute.SimpleImputer",
             "sklearn.preprocessing.StandardScaler", "xgboost.XGBRegressor"],
            init_params={"xgboost.XGBRegressor": {"n_estimators": 20, "random_state": 0}},
        )
        pipeline.fit(X=X[:150], y=y[:150])
        assert r2_score(y[150:], pipeline.predict(X=X[150:])) > 0.6

    def test_target_dependent_steps_skipped_at_predict(self, fitted_pipeline):
        pipeline, X, _ = fitted_pipeline
        # predict must work without y in the context
        predictions = pipeline.predict(X=X[:10])
        assert len(predictions) == 10

    def test_missing_output_raises_helpful_error(self, classification_data):
        X, y = classification_data
        pipeline = MLPipeline(["mlprimitives.custom.preprocessing.ClassEncoder"])
        pipeline.fit(X=X, y=y)
        with pytest.raises(RuntimeError, match="keys available at fit time"):
            pipeline.predict(X=X)

    def test_fit_context_keys_exposed(self, fitted_pipeline):
        pipeline, X, labels = fitted_pipeline
        assert pipeline.fit_context_keys is not None
        assert "X" in pipeline.fit_context_keys
        assert "y" in pipeline.fit_context_keys
        assert pipeline.fit_context_keys == sorted(pipeline.fit_context_keys)

    def test_fit_context_keys_none_before_fit(self):
        pipeline = MLPipeline(["mlprimitives.custom.preprocessing.ClassEncoder"])
        assert pipeline.fit_context_keys is None

    def test_unsupervised_pipeline_creates_target_on_the_fly(self, rng):
        # the ORION-style property highlighted in the paper: y is created
        # mid-pipeline by rolling_window_sequences
        t = np.arange(300.0)
        signal = np.column_stack([t, np.sin(t / 10.0)])
        pipeline = MLPipeline([
            "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
            "keras.Sequential.LSTMTimeSeriesRegressor",
        ], init_params={
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences": {
                "window_size": 20},
            "keras.Sequential.LSTMTimeSeriesRegressor": {"epochs": 5, "random_state": 0},
        })
        pipeline.fit(X=signal)
        predictions = pipeline.predict(X=signal)
        assert len(predictions) > 0


class TestHyperparameterManagement:
    def test_get_tunable_hyperparameters_structure(self):
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        tunables = pipeline.get_tunable_hyperparameters()
        assert "xgboost.XGBClassifier#0" in tunables
        assert "n_estimators" in tunables["xgboost.XGBClassifier#0"]

    def test_set_hyperparameters_nested(self, classification_data):
        X, y = classification_data
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        pipeline.set_hyperparameters({"xgboost.XGBClassifier#0": {"n_estimators": 4}})
        assert pipeline.get_hyperparameters()["xgboost.XGBClassifier#0"]["n_estimators"] == 4

    def test_set_hyperparameters_flat_tuples(self):
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        pipeline.set_hyperparameters({("xgboost.XGBClassifier#0", "max_depth"): 5})
        assert pipeline.get_hyperparameters()["xgboost.XGBClassifier#0"]["max_depth"] == 5

    def test_set_hyperparameters_unknown_step_raises(self):
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        with pytest.raises(ValueError, match="Unknown pipeline step"):
            pipeline.set_hyperparameters({"nope#0": {"a": 1}})

    def test_setting_hyperparameters_invalidates_fit(self, fitted_pipeline):
        pipeline, X, _ = fitted_pipeline
        pipeline.set_hyperparameters({"xgboost.XGBClassifier#0": {"n_estimators": 3}})
        with pytest.raises(RuntimeError):
            pipeline.predict(X=X)


class TestSerialization:
    def test_to_dict_round_trip(self, classification_data):
        X, y = classification_data
        pipeline = MLPipeline(
            CLASSIFICATION_PRIMITIVES,
            init_params={"xgboost.XGBClassifier": {"n_estimators": 6, "random_state": 0}},
        )
        rebuilt = MLPipeline.from_dict(pipeline.to_dict())
        assert rebuilt.primitives == pipeline.primitives
        rebuilt.fit(X=X, y=y)
        assert accuracy_score(y, rebuilt.predict(X=X)) > 0.8

    def test_save_and_load_json(self, tmp_path, classification_data):
        X, y = classification_data
        path = tmp_path / "pipeline.json"
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        pipeline.save(path)
        loaded = MLPipeline.load(path)
        assert loaded.primitives == pipeline.primitives

    def test_to_json_is_valid_json(self):
        import json

        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        payload = json.loads(pipeline.to_json())
        assert payload["primitives"] == CLASSIFICATION_PRIMITIVES

    def test_validate_accepts_valid_pipeline(self):
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        assert pipeline.validate() is True


class TestDescribe:
    def test_describe_lists_every_edge(self):
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        description = pipeline.describe()
        assert description.count("--[") == pipeline.graph().number_of_edges()

    def test_describe_uses_short_names(self):
        pipeline = MLPipeline(CLASSIFICATION_PRIMITIVES)
        description = pipeline.describe()
        assert "XGBClassifier" in description
        assert "xgboost.XGBClassifier#0" not in description

    def test_describe_mentions_inputs(self):
        pipeline = MLPipeline(["sklearn.preprocessing.StandardScaler"])
        description = pipeline.describe(inputs=["X"])
        assert "inputs: X" in description
        assert "input --[X]--> StandardScaler" in description
