"""Tests for hyperparameter types and the joint Tunable space."""

import numpy as np
import pytest

from repro.core.annotations import HyperparamSpec
from repro.tuning.hyperparams import (
    BooleanHyperparam,
    CategoricalHyperparam,
    FloatHyperparam,
    IntHyperparam,
    Tunable,
    hyperparam_from_spec,
)


class TestIntHyperparam:
    def test_sample_within_range(self, rng):
        hp = IntHyperparam("n", 2, 9)
        samples = [hp.sample(rng) for _ in range(200)]
        assert min(samples) >= 2
        assert max(samples) <= 9

    def test_unit_roundtrip(self):
        hp = IntHyperparam("n", 0, 10)
        for value in (0, 3, 10):
            assert hp.from_unit(hp.to_unit(value)) == value

    def test_from_unit_clips(self):
        hp = IntHyperparam("n", 1, 5)
        assert hp.from_unit(-0.5) == 1
        assert hp.from_unit(2.0) == 5

    def test_degenerate_range(self):
        hp = IntHyperparam("n", 3, 3)
        assert hp.to_unit(3) == 0.0
        assert hp.from_unit(0.7) == 3

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            IntHyperparam("n", 5, 1)


class TestFloatHyperparam:
    def test_sample_within_range(self, rng):
        hp = FloatHyperparam("alpha", 0.1, 0.9)
        samples = [hp.sample(rng) for _ in range(100)]
        assert min(samples) >= 0.1
        assert max(samples) <= 0.9

    def test_unit_roundtrip(self):
        hp = FloatHyperparam("alpha", -2.0, 2.0)
        for value in (-2.0, 0.0, 1.5):
            assert hp.from_unit(hp.to_unit(value)) == pytest.approx(value)

    def test_default_falls_back_to_low(self):
        assert FloatHyperparam("alpha", 0.5, 1.0).default == 0.5


class TestBooleanHyperparam:
    def test_roundtrip(self):
        hp = BooleanHyperparam("flag")
        assert hp.from_unit(hp.to_unit(True)) is True
        assert hp.from_unit(hp.to_unit(False)) is False

    def test_sample_produces_both_values(self, rng):
        hp = BooleanHyperparam("flag")
        assert {hp.sample(rng) for _ in range(50)} == {True, False}


class TestCategoricalHyperparam:
    def test_roundtrip_all_values(self):
        hp = CategoricalHyperparam("kind", ["a", "b", "c"])
        for value in ["a", "b", "c"]:
            assert hp.from_unit(hp.to_unit(value)) == value

    def test_tuple_and_none_values(self):
        hp = CategoricalHyperparam("layers", [(32,), (64, 32), None])
        assert hp.from_unit(hp.to_unit(None)) is None
        assert hp.from_unit(hp.to_unit((64, 32))) == (64, 32)

    def test_unknown_value_raises(self):
        hp = CategoricalHyperparam("kind", ["a"])
        with pytest.raises(ValueError):
            hp.to_unit("z")

    def test_single_value_category(self):
        hp = CategoricalHyperparam("kind", ["only"])
        assert hp.to_unit("only") == 0.0
        assert hp.from_unit(0.9) == "only"

    def test_requires_values(self):
        with pytest.raises(ValueError):
            CategoricalHyperparam("kind", [])


class TestHyperparamFromSpec:
    def test_int_spec(self):
        hp = hyperparam_from_spec("n", HyperparamSpec("n", "int", 3, range=(1, 10)))
        assert isinstance(hp, IntHyperparam)
        assert hp.default == 3

    def test_float_spec(self):
        hp = hyperparam_from_spec("a", HyperparamSpec("a", "float", 0.5, range=(0.0, 1.0)))
        assert isinstance(hp, FloatHyperparam)

    def test_bool_spec(self):
        hp = hyperparam_from_spec("f", HyperparamSpec("f", "bool", True))
        assert isinstance(hp, BooleanHyperparam)

    def test_categorical_spec(self):
        hp = hyperparam_from_spec("k", HyperparamSpec("k", "categorical", "a", values=["a", "b"]))
        assert isinstance(hp, CategoricalHyperparam)


class TestTunable:
    def _space(self):
        return Tunable({
            ("step", "n"): IntHyperparam("n", 1, 20, default=5),
            ("step", "rate"): FloatHyperparam("rate", 0.0, 1.0, default=0.3),
            ("step", "kind"): CategoricalHyperparam("kind", ["a", "b"], default="a"),
        })

    def test_dimensions(self):
        assert self._space().dimensions == 3

    def test_defaults(self):
        defaults = self._space().defaults()
        assert defaults[("step", "n")] == 5
        assert defaults[("step", "kind")] == "a"

    def test_sample_contains_every_key(self, rng):
        sample = self._space().sample(rng)
        assert set(sample) == set(self._space().keys)

    def test_sample_many_length(self, rng):
        assert len(self._space().sample_many(7, rng)) == 7

    def test_vector_roundtrip(self, rng):
        space = self._space()
        params = space.sample(rng)
        recovered = space.from_vector(space.to_vector(params))
        assert recovered[("step", "kind")] == params[("step", "kind")]
        assert recovered[("step", "n")] == params[("step", "n")]

    def test_vector_within_unit_cube(self, rng):
        space = self._space()
        for _ in range(20):
            vector = space.to_vector(space.sample(rng))
            assert np.all(vector >= 0.0)
            assert np.all(vector <= 1.0)

    def test_missing_key_raises(self):
        with pytest.raises(ValueError):
            self._space().to_vector({("step", "n"): 3})

    def test_wrong_vector_size_raises(self):
        with pytest.raises(ValueError):
            self._space().from_vector([0.5])

    def test_from_specs_filters_non_tunable(self):
        specs = {
            ("s", "a"): HyperparamSpec("a", "int", 1, range=(0, 5)),
            ("s", "b"): HyperparamSpec("b", "int", 1, range=(0, 5), tunable=False),
        }
        tunable = Tunable.from_specs(specs)
        assert tunable.keys == [("s", "a")]

    def test_from_specs_requires_something_tunable(self):
        specs = {("s", "b"): HyperparamSpec("b", "int", 1, range=(0, 5), tunable=False)}
        with pytest.raises(ValueError):
            Tunable.from_specs(specs)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            Tunable({})
