"""Tests for the compute_rewards/select selectors (multi-armed bandits)."""

import numpy as np
import pytest

from repro.tuning.selectors import (
    BestKRewardSelector,
    UCB1Selector,
    UniformSelector,
    get_selector,
)


class TestUniformSelector:
    def test_unseen_candidates_selected_first(self):
        selector = UniformSelector(["a", "b"], random_state=0)
        assert selector.select({"a": [0.5]}) == "b"

    def test_selects_among_candidates(self):
        selector = UniformSelector(["a", "b", "c"], random_state=0)
        scores = {"a": [0.1], "b": [0.2], "c": [0.3]}
        picks = {selector.select(scores) for _ in range(30)}
        assert picks <= {"a", "b", "c"}
        assert len(picks) > 1

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            UniformSelector([])


class TestUCB1Selector:
    def test_rewards_are_mean_scores(self):
        selector = UCB1Selector(["a"])
        rewards = selector.compute_rewards([0.0, 1.0])
        assert rewards == [0.5, 0.5]

    def test_exploits_clearly_better_arm(self):
        selector = UCB1Selector(["good", "bad"], random_state=0)
        scores = {"good": [0.9] * 10, "bad": [0.1] * 10}
        assert selector.select(scores) == "good"

    def test_explores_rarely_tried_arm(self):
        selector = UCB1Selector(["often", "rare"], random_state=0)
        # "often" has slightly better mean but has been tried many times
        scores = {"often": [0.55] * 100, "rare": [0.50]}
        assert selector.select(scores) == "rare"

    def test_unseen_arm_goes_first(self):
        selector = UCB1Selector(["a", "b", "c"], random_state=0)
        assert selector.select({"a": [0.9], "b": [0.8]}) == "c"

    def test_single_candidate_always_selected(self):
        selector = UCB1Selector(["only"])
        assert selector.select({"only": [0.5, 0.6]}) == "only"


class TestBestKRewardSelector:
    def test_rewards_use_top_k(self):
        selector = BestKRewardSelector(["a"], k=2)
        rewards = selector.compute_rewards([0.0, 0.2, 0.9, 1.0])
        assert rewards[0] == pytest.approx(0.95)

    def test_prefers_arm_with_best_peak_performance(self):
        selector = BestKRewardSelector(["steady", "peaky"], k=1, random_state=0)
        scores = {
            "steady": [0.6] * 10,
            "peaky": [0.2] * 9 + [0.95],
        }
        assert selector.select(scores) == "peaky"

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            BestKRewardSelector(["a"], k=0)


class TestSelectorRegistry:
    def test_lookup(self):
        assert get_selector("ucb1") is UCB1Selector
        assert get_selector("uniform") is UniformSelector
        assert get_selector("best_k") is BestKRewardSelector

    def test_unknown_selector(self):
        with pytest.raises(ValueError):
            get_selector("round_robin")


class TestBanditBehaviour:
    def test_ucb1_accumulates_more_pulls_on_better_arm(self, rng):
        selector = UCB1Selector(["good", "bad"], random_state=0)
        scores = {"good": [], "bad": []}
        true_means = {"good": 0.8, "bad": 0.4}
        for _ in range(60):
            arm = selector.select(scores)
            scores[arm].append(float(np.clip(rng.normal(true_means[arm], 0.1), 0, 1)))
        assert len(scores["good"]) > len(scores["bad"])
