"""Failed evaluations count as bandit trials (selectors) and liar points (tuners).

Before this accounting existed, a template whose configurations crash
deterministically kept an empty score list forever, so ``_unseen``
returned it on every ``select`` call and the search burned its whole
budget re-proposing a known-bad arm.
"""

import pytest

from repro.automl import AutoBazaarSearch
from repro.core.template import Template
from repro.tasks import synth
from repro.tuning.selectors import (
    BestKRewardSelector,
    ThompsonSamplingSelector,
    UCB1Selector,
    get_selector,
)
from repro.tuning.tuners import GPEiTuner, UniformTuner


def tunable_space():
    return Template(
        "failure_space",
        ["mlprimitives.custom.preprocessing.ClassEncoder",
         "sklearn.impute.SimpleImputer",
         "sklearn.ensemble.RandomForestClassifier",
         "mlprimitives.custom.preprocessing.ClassDecoder"],
    ).get_tunable_hyperparameters()


class TestSelectorFailureTrials:
    def test_failed_arm_is_no_longer_unseen(self):
        selector = UCB1Selector(["bad", "good"], random_state=0)
        assert selector._unseen({}) == ["bad", "good"]
        selector.record_failure("bad")
        assert selector._unseen({}) == ["good"]
        assert selector.failure_count("bad") == 1

    def test_one_transient_failure_earns_a_retry_two_quarantine(self):
        # the first failure may be transient (killed worker, flaky I/O):
        # the arm stays selectable for exactly one retry, then a second
        # scoreless failure quarantines it while other arms remain
        selector = UCB1Selector(["bad", "good"], random_state=0)
        scores = {"bad": [], "good": [0.6]}
        selector.record_failure("bad")
        assert "bad" in selector._selectable(scores)
        selector.record_failure("bad")
        assert selector._selectable(scores) == ["good"]
        # with every arm quarantined, the least-failed ones stay in play
        selector.record_failure("good")
        selector.record_failure("good")
        selector.record_failure("good")
        assert selector._selectable({"bad": [], "good": []}) == ["bad"]

    def test_failures_shrink_selection_frequency(self):
        # "bad" crashed three times, "good" has one mediocre score; the
        # spent trials plus the pessimistic liar must steer selection to
        # the arm that actually produces scores
        selector = UCB1Selector(["bad", "good"], random_state=0)
        for _ in range(3):
            selector.record_failure("bad")
        scores = {"bad": [], "good": [0.6]}
        assert selector.select(scores) == "good"

    def test_failures_count_toward_total_trials(self):
        selector = UCB1Selector(["a", "b"], random_state=0)
        selector.record_failure("a")
        selector.record_failure("a")
        total, _, liar = selector._bandit_state({"a": [], "b": [0.5]})
        assert total == 3  # one score + two failures
        assert liar == pytest.approx(0.5)  # worst mean across scored arms

    @pytest.mark.parametrize("selector_name", ["ucb1", "best_k", "best_k_velocity", "thompson"])
    def test_all_failed_arm_still_selectable_without_crash(self, selector_name):
        selector = get_selector(selector_name)(["a", "b"], random_state=0)
        selector.record_failure("a")
        chosen = selector.select({"a": [], "b": [0.5, 0.6]})
        assert chosen in ("a", "b")

    def test_best_k_failures_decay_exploration_bonus(self):
        selector = BestKRewardSelector(["bad", "good"], k=2, random_state=0)
        scores = {"bad": [], "good": [0.7, 0.8]}
        selector.record_failure("bad")
        first = selector.select(scores)
        for _ in range(6):
            selector.record_failure("bad")
        later = selector.select(scores)
        assert later == "good"
        assert (first, later).count("bad") <= 1

    def test_thompson_failed_trials_narrow_the_draw(self):
        selector = ThompsonSamplingSelector(["bad", "good"], random_state=0)
        for _ in range(10):
            selector.record_failure("bad")
        picks = {selector.select({"bad": [], "good": [0.5, 0.55]}) for _ in range(10)}
        assert "good" in picks


class TestTunerFailureTrials:
    def test_record_failure_kept_out_of_real_history(self):
        tuner = UniformTuner(tunable_space(), random_state=0)
        params = tuner.propose()
        tuner.record_failure(params)
        assert tuner.failed_trials == [params]
        assert tuner.trials == []
        assert tuner.scores == []

    def test_failed_trials_join_training_data_at_liar_score(self):
        tuner = GPEiTuner(tunable_space(), random_state=0)
        for score in (0.4, 0.7):
            tuner.record(tuner.propose(), score)
        crashed = tuner.propose()
        tuner.record_failure(crashed)
        trials, scores = tuner._training_data()
        assert len(trials) == 3
        assert scores == [0.4, 0.7, 0.4]  # the lie is the observed minimum
        assert trials[-1] == crashed

    def test_failed_trials_ignored_until_a_real_score_exists(self):
        tuner = GPEiTuner(tunable_space(), random_state=0)
        tuner.record_failure(tuner.propose())
        trials, scores = tuner._training_data()
        assert trials == [] and scores == []

    def test_propose_still_works_with_failures_recorded(self):
        tuner = GPEiTuner(tunable_space(), min_trials=2, random_state=0)
        for score in (0.3, 0.6, 0.5):
            tuner.record(tuner.propose(), score)
        tuner.record_failure(tuner.propose())
        assert isinstance(tuner.propose(), dict)


class TestSearchStopsRedrawingCrashingTemplates:
    def test_broken_template_draws_decay(self):
        broken = Template(
            "always_broken",
            ["sklearn.decomposition.PCA", "xgboost.XGBClassifier"],
            init_params={"sklearn.decomposition.PCA": {"n_components": 0}},
        )
        working = Template(
            "works",
            ["mlprimitives.custom.preprocessing.ClassEncoder",
             "sklearn.impute.SimpleImputer",
             "sklearn.ensemble.RandomForestClassifier",
             "mlprimitives.custom.preprocessing.ClassDecoder"],
            init_params={"sklearn.ensemble.RandomForestClassifier": {"random_state": 0}},
        )
        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        searcher = AutoBazaarSearch(
            templates=[broken, working], n_splits=2, random_state=0,
        )
        result = searcher.search(task, budget=8)
        broken_draws = sum(1 for r in result.records if r.template_name == "always_broken")
        # one mandatory default evaluation plus at most one exploratory
        # re-draw; without failure accounting the broken arm stayed
        # "unseen" forever and won every post-default selection
        assert broken_draws <= 2
        assert result.best_score is not None
