"""Tests for Gaussian process meta-models and acquisition functions."""

import numpy as np
import pytest

from repro.tuning.acquisition import (
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.tuning.gp import (
    GaussianCopulaProcessRegressor,
    GaussianProcessRegressor,
    matern52_kernel,
    squared_exponential_kernel,
)


class TestKernels:
    def test_se_kernel_diagonal_is_signal_variance(self, rng):
        X = rng.uniform(size=(5, 3))
        K = squared_exponential_kernel(X, X, signal_variance=2.0)
        assert np.allclose(np.diag(K), 2.0)

    def test_matern_kernel_diagonal_is_signal_variance(self, rng):
        X = rng.uniform(size=(5, 3))
        K = matern52_kernel(X, X, signal_variance=1.5)
        assert np.allclose(np.diag(K), 1.5)

    def test_kernels_decay_with_distance(self):
        X1 = np.array([[0.0]])
        X2 = np.array([[0.0], [0.5], [2.0]])
        for kernel in (squared_exponential_kernel, matern52_kernel):
            values = kernel(X1, X2, length_scale=0.5).ravel()
            assert values[0] > values[1] > values[2]

    def test_kernels_are_symmetric(self, rng):
        X = rng.uniform(size=(6, 2))
        for kernel in (squared_exponential_kernel, matern52_kernel):
            K = kernel(X, X)
            assert np.allclose(K, K.T)

    def test_kernel_matrices_positive_semidefinite(self, rng):
        X = rng.uniform(size=(8, 2))
        for kernel in (squared_exponential_kernel, matern52_kernel):
            eigenvalues = np.linalg.eigvalsh(kernel(X, X))
            assert eigenvalues.min() > -1e-8


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        X = rng.uniform(size=(12, 1))
        y = np.sin(4.0 * X[:, 0])
        gp = GaussianProcessRegressor(kernel="se", noise=1e-8).fit(X, y)
        mean, _ = gp.predict(X)
        assert np.allclose(mean, y, atol=1e-2)

    def test_uncertainty_grows_away_from_data(self, rng):
        X = rng.uniform(0.0, 0.3, size=(10, 1))
        y = X[:, 0]
        gp = GaussianProcessRegressor(kernel="se").fit(X, y)
        _, std_near = gp.predict(np.array([[0.15]]))
        _, std_far = gp.predict(np.array([[0.95]]))
        assert std_far[0] > std_near[0]

    def test_matern_kernel_works(self, rng):
        X = rng.uniform(size=(15, 2))
        y = X[:, 0] + X[:, 1]
        gp = GaussianProcessRegressor(kernel="matern52").fit(X, y)
        mean, std = gp.predict(X)
        assert mean.shape == (15,)
        assert np.all(std >= 0.0)

    def test_unknown_kernel_raises(self, rng):
        X = rng.uniform(size=(5, 1))
        with pytest.raises(ValueError):
            GaussianProcessRegressor(kernel="cubic").fit(X, np.ones(5))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.ones((3, 1)), np.ones(4))

    def test_length_scale_selected_by_likelihood(self, rng):
        X = rng.uniform(size=(20, 1))
        y = np.sin(10.0 * X[:, 0])
        gp = GaussianProcessRegressor(length_scales=(0.05, 1.0)).fit(X, y)
        assert gp.length_scale_ in (0.05, 1.0)

    def test_predict_without_std(self, rng):
        X = rng.uniform(size=(10, 1))
        gp = GaussianProcessRegressor().fit(X, X[:, 0])
        mean = gp.predict(X, return_std=False)
        assert mean.shape == (10,)


class TestGaussianCopulaProcess:
    def test_predictions_within_observed_score_range(self, rng):
        X = rng.uniform(size=(20, 2))
        y = np.exp(3.0 * X[:, 0])  # heavily skewed scores
        gcp = GaussianCopulaProcessRegressor().fit(X, y)
        mean, std = gcp.predict(rng.uniform(size=(10, 2)))
        assert mean.min() >= y.min() - 1e-9
        assert mean.max() <= y.max() + 1e-9
        assert np.all(std >= 0.0)

    def test_latent_predictions_available(self, rng):
        X = rng.uniform(size=(15, 1))
        y = X[:, 0] ** 2
        gcp = GaussianCopulaProcessRegressor().fit(X, y)
        mean, std = gcp.predict_latent(X)
        assert mean.shape == (15,)

    def test_monotone_relationship_preserved(self, rng):
        X = np.linspace(0, 1, 30).reshape(-1, 1)
        y = np.exp(5.0 * X[:, 0])
        gcp = GaussianCopulaProcessRegressor().fit(X, y)
        mean, _ = gcp.predict(np.array([[0.1], [0.9]]))
        assert mean[1] > mean[0]


class TestAcquisitionFunctions:
    def test_ei_zero_when_no_improvement_possible(self):
        ei = expected_improvement(np.array([0.0]), np.array([1e-12]), best=10.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_ei_positive_for_promising_candidates(self):
        ei = expected_improvement(np.array([5.0]), np.array([1.0]), best=1.0)
        assert ei[0] > 3.0

    def test_ei_increases_with_uncertainty_at_same_mean(self):
        low = expected_improvement(np.array([1.0]), np.array([0.1]), best=1.0)
        high = expected_improvement(np.array([1.0]), np.array([2.0]), best=1.0)
        assert high[0] > low[0]

    def test_ucb_is_mean_plus_beta_std(self):
        value = upper_confidence_bound(np.array([1.0]), np.array([0.5]), beta=2.0)
        assert value[0] == pytest.approx(2.0)

    def test_pi_bounded_between_zero_and_one(self):
        pi = probability_of_improvement(np.array([0.0, 10.0]), np.array([1.0, 1.0]), best=5.0)
        assert np.all(pi >= 0.0)
        assert np.all(pi <= 1.0)
        assert pi[1] > pi[0]
