"""Tests for the meta-learning (warm-start) tuner extension."""

import numpy as np

from repro.explorer import PipelineStore
from repro.tuning.hyperparams import FloatHyperparam, IntHyperparam, Tunable
from repro.tuning.meta import WarmStartGPTuner, harvest_history, _parse_key


def _space():
    return Tunable({
        ("m", "x"): FloatHyperparam("x", 0.0, 1.0, default=0.5),
        ("m", "n"): IntHyperparam("n", 1, 10, default=5),
    })


def _objective(params):
    x = params[("m", "x")]
    n = params[("m", "n")] / 10.0
    return float(-((x - 0.8) ** 2) - (n - 0.2) ** 2)


def _history(n=20, seed=0):
    rng = np.random.RandomState(seed)
    history = []
    for _ in range(n):
        params = {("m", "x"): float(rng.uniform()), ("m", "n"): int(rng.randint(1, 11))}
        history.append((params, _objective(params)))
    return history


class TestWarmStartGPTuner:
    def test_first_proposal_exploits_best_prior(self):
        history = _history()
        best_prior = max(history, key=lambda pair: pair[1])[0]
        tuner = WarmStartGPTuner(_space(), history=history, random_state=0)
        assert tuner.propose() == best_prior

    def test_warm_observations_counted(self):
        tuner = WarmStartGPTuner(_space(), history=_history(12), random_state=0)
        assert tuner.n_warm_observations == 12

    def test_incomplete_history_entries_ignored(self):
        history = [({("m", "x"): 0.5}, 0.1), ({("m", "x"): 0.2, ("m", "n"): 3}, 0.2)]
        tuner = WarmStartGPTuner(_space(), history=history)
        assert tuner.n_warm_observations == 1

    def test_none_scores_ignored(self):
        history = [({("m", "x"): 0.5, ("m", "n"): 2}, None)]
        tuner = WarmStartGPTuner(_space(), history=history)
        assert tuner.n_warm_observations == 0

    def test_behaves_like_gp_tuner_without_history(self):
        tuner = WarmStartGPTuner(_space(), history=[], random_state=0)
        for _ in range(5):
            params = tuner.propose()
            tuner.record(params, _objective(params))
        assert tuner.best_score is not None

    def test_warm_start_speeds_up_early_search(self):
        def best_after(tuner, iterations=4):
            best = -np.inf
            for _ in range(iterations):
                params = tuner.propose()
                score = _objective(params)
                tuner.record(params, score)
                best = max(best, score)
            return best

        history = _history(30, seed=1)
        warm_bests = [
            best_after(WarmStartGPTuner(_space(), history=history, random_state=seed))
            for seed in range(4)
        ]
        from repro.tuning.tuners import UniformTuner

        cold_bests = [
            best_after(UniformTuner(_space(), random_state=seed)) for seed in range(4)
        ]
        assert np.mean(warm_bests) >= np.mean(cold_bests)

    def test_proposals_stay_in_bounds(self):
        tuner = WarmStartGPTuner(_space(), history=_history(), random_state=0)
        for _ in range(8):
            params = tuner.propose()
            assert 0.0 <= params[("m", "x")] <= 1.0
            assert 1 <= params[("m", "n")] <= 10
            tuner.record(params, _objective(params))


class TestHarvestHistory:
    def _store(self):
        store = PipelineStore()
        for task, score, x in [("t1", 0.9, 0.8), ("t2", 0.5, 0.2), ("t3", None, 0.4)]:
            store.add({
                "task_name": task,
                "template_name": "clf_xgb",
                "score": score,
                "hyperparameters": {str(("m", "x")): x, str(("m", "n")): 3},
            })
        store.add({
            "task_name": "t1", "template_name": "other_template", "score": 0.99,
            "hyperparameters": {str(("m", "x")): 0.1},
        })
        return store

    def test_only_matching_template_and_scored_documents(self):
        history = harvest_history(self._store(), "clf_xgb")
        assert len(history) == 2

    def test_exclude_task(self):
        history = harvest_history(self._store(), "clf_xgb", exclude_task="t1")
        assert len(history) == 1

    def test_sorted_by_score_and_limited(self):
        history = harvest_history(self._store(), "clf_xgb", limit=1)
        assert len(history) == 1
        assert history[0][1] == 0.9

    def test_keys_parsed_back_to_tuples(self):
        history = harvest_history(self._store(), "clf_xgb")
        params, _ = history[0]
        assert ("m", "x") in params

    def test_parse_key_passthrough(self):
        assert _parse_key(("a", "b")) == ("a", "b")
        assert _parse_key("plain") == "plain"
        assert _parse_key("('step#0', 'alpha')") == ("step#0", "alpha")
