"""Tests for the record/propose tuners."""

import numpy as np
import pytest

from repro.tuning.hyperparams import FloatHyperparam, IntHyperparam, Tunable
from repro.tuning.tuners import (
    GCPEiTuner,
    GPEiTuner,
    GPMatern52EiTuner,
    GPTuner,
    UniformTuner,
    get_tuner,
)


def _space():
    return Tunable({
        ("m", "x"): FloatHyperparam("x", 0.0, 1.0, default=0.5),
        ("m", "n"): IntHyperparam("n", 1, 10, default=5),
    })


def _branin_like(params):
    """A smooth 1-peak objective on the unit square (higher is better)."""
    x = params[("m", "x")]
    n = params[("m", "n")] / 10.0
    return float(-((x - 0.7) ** 2) - (n - 0.3) ** 2)


class TestBaseTunerBehaviour:
    def test_record_and_best(self):
        tuner = UniformTuner(_space(), random_state=0)
        tuner.record({("m", "x"): 0.2, ("m", "n"): 3}, 0.5)
        tuner.record({("m", "x"): 0.8, ("m", "n"): 4}, 0.9)
        assert tuner.best_score == 0.9
        assert tuner.best_params[("m", "x")] == 0.8

    def test_empty_tuner_has_no_best(self):
        tuner = UniformTuner(_space())
        assert tuner.best_score is None
        assert tuner.best_params is None

    def test_non_finite_score_rejected(self):
        tuner = UniformTuner(_space())
        with pytest.raises(ValueError):
            tuner.record({("m", "x"): 0.5, ("m", "n"): 5}, float("nan"))

    def test_accepts_spec_dict_directly(self):
        from repro.core.annotations import HyperparamSpec

        tuner = UniformTuner({("m", "x"): HyperparamSpec("x", "float", 0.5, range=(0, 1))})
        assert tuner.tunable.dimensions == 1

    def test_propose_is_abstract_on_base(self):
        from repro.tuning.tuners import BaseTuner

        with pytest.raises(NotImplementedError):
            BaseTuner(_space()).propose()


class TestUniformTuner:
    def test_proposals_within_bounds(self):
        tuner = UniformTuner(_space(), random_state=0)
        for _ in range(30):
            params = tuner.propose()
            assert 0.0 <= params[("m", "x")] <= 1.0
            assert 1 <= params[("m", "n")] <= 10

    def test_reproducible_with_seed(self):
        a = UniformTuner(_space(), random_state=7).propose()
        b = UniformTuner(_space(), random_state=7).propose()
        assert a == b


class TestGPTuners:
    @pytest.mark.parametrize("tuner_class", [GPEiTuner, GPMatern52EiTuner, GCPEiTuner])
    def test_tuner_improves_over_iterations(self, tuner_class):
        tuner = tuner_class(_space(), random_state=0)
        scores = []
        for _ in range(15):
            params = tuner.propose()
            score = _branin_like(params)
            tuner.record(params, score)
            scores.append(score)
        # the best of the later proposals should beat the best of the first 3 (random) ones
        assert max(scores[3:]) >= max(scores[:3])
        assert tuner.best_score > -0.5

    def test_gp_tuner_beats_random_on_average(self):
        def run(tuner):
            best = -np.inf
            for _ in range(12):
                params = tuner.propose()
                score = _branin_like(params)
                tuner.record(params, score)
                best = max(best, score)
            return best

        gp_bests = [run(GPEiTuner(_space(), random_state=seed)) for seed in range(5)]
        random_bests = [run(UniformTuner(_space(), random_state=seed)) for seed in range(5)]
        assert np.mean(gp_bests) >= np.mean(random_bests) - 0.02

    def test_random_until_min_trials(self):
        tuner = GPEiTuner(_space(), min_trials=4, random_state=0)
        for _ in range(3):
            params = tuner.propose()
            tuner.record(params, 0.1)
        assert len(tuner.trials) == 3  # still below min_trials; proposals were random

    def test_kernel_attribute_matches_variant(self):
        assert GPEiTuner(_space()).kernel == "se"
        assert GPMatern52EiTuner(_space()).kernel == "matern52"

    def test_invalid_acquisition_rejected(self):
        with pytest.raises(ValueError):
            GPTuner(_space(), acquisition="magic")

    def test_proposals_stay_in_bounds_after_model_kicks_in(self):
        tuner = GPEiTuner(_space(), min_trials=2, n_candidates=30, random_state=0)
        for _ in range(10):
            params = tuner.propose()
            assert 0.0 <= params[("m", "x")] <= 1.0
            assert 1 <= params[("m", "n")] <= 10
            tuner.record(params, _branin_like(params))


class TestTunerRegistry:
    def test_lookup_by_name(self):
        assert get_tuner("gp_ei") is GPEiTuner
        assert get_tuner("gp_matern52_ei") is GPMatern52EiTuner
        assert get_tuner("uniform") is UniformTuner

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_tuner("simulated_annealing")
