"""Tests for the record/propose tuners."""

import numpy as np
import pytest

from repro.tuning.hyperparams import FloatHyperparam, IntHyperparam, Tunable
from repro.tuning.tuners import (
    GCPEiTuner,
    GPEiTuner,
    GPMatern52EiTuner,
    GPTuner,
    UniformTuner,
    get_tuner,
)


def _space():
    return Tunable({
        ("m", "x"): FloatHyperparam("x", 0.0, 1.0, default=0.5),
        ("m", "n"): IntHyperparam("n", 1, 10, default=5),
    })


def _branin_like(params):
    """A smooth 1-peak objective on the unit square (higher is better)."""
    x = params[("m", "x")]
    n = params[("m", "n")] / 10.0
    return float(-((x - 0.7) ** 2) - (n - 0.3) ** 2)


class TestBaseTunerBehaviour:
    def test_record_and_best(self):
        tuner = UniformTuner(_space(), random_state=0)
        tuner.record({("m", "x"): 0.2, ("m", "n"): 3}, 0.5)
        tuner.record({("m", "x"): 0.8, ("m", "n"): 4}, 0.9)
        assert tuner.best_score == 0.9
        assert tuner.best_params[("m", "x")] == 0.8

    def test_empty_tuner_has_no_best(self):
        tuner = UniformTuner(_space())
        assert tuner.best_score is None
        assert tuner.best_params is None

    def test_non_finite_score_rejected(self):
        tuner = UniformTuner(_space())
        with pytest.raises(ValueError):
            tuner.record({("m", "x"): 0.5, ("m", "n"): 5}, float("nan"))

    def test_accepts_spec_dict_directly(self):
        from repro.core.annotations import HyperparamSpec

        tuner = UniformTuner({("m", "x"): HyperparamSpec("x", "float", 0.5, range=(0, 1))})
        assert tuner.tunable.dimensions == 1

    def test_propose_is_abstract_on_base(self):
        from repro.tuning.tuners import BaseTuner

        with pytest.raises(NotImplementedError):
            BaseTuner(_space()).propose()


class TestUniformTuner:
    def test_proposals_within_bounds(self):
        tuner = UniformTuner(_space(), random_state=0)
        for _ in range(30):
            params = tuner.propose()
            assert 0.0 <= params[("m", "x")] <= 1.0
            assert 1 <= params[("m", "n")] <= 10

    def test_reproducible_with_seed(self):
        a = UniformTuner(_space(), random_state=7).propose()
        b = UniformTuner(_space(), random_state=7).propose()
        assert a == b


class TestGPTuners:
    @pytest.mark.parametrize("tuner_class", [GPEiTuner, GPMatern52EiTuner, GCPEiTuner])
    def test_tuner_improves_over_iterations(self, tuner_class):
        tuner = tuner_class(_space(), random_state=0)
        scores = []
        for _ in range(15):
            params = tuner.propose()
            score = _branin_like(params)
            tuner.record(params, score)
            scores.append(score)
        # the best of the later proposals should beat the best of the first 3 (random) ones
        assert max(scores[3:]) >= max(scores[:3])
        assert tuner.best_score > -0.5

    def test_gp_tuner_beats_random_on_average(self):
        def run(tuner):
            best = -np.inf
            for _ in range(12):
                params = tuner.propose()
                score = _branin_like(params)
                tuner.record(params, score)
                best = max(best, score)
            return best

        gp_bests = [run(GPEiTuner(_space(), random_state=seed)) for seed in range(5)]
        random_bests = [run(UniformTuner(_space(), random_state=seed)) for seed in range(5)]
        assert np.mean(gp_bests) >= np.mean(random_bests) - 0.02

    def test_random_until_min_trials(self):
        tuner = GPEiTuner(_space(), min_trials=4, random_state=0)
        for _ in range(3):
            params = tuner.propose()
            tuner.record(params, 0.1)
        assert len(tuner.trials) == 3  # still below min_trials; proposals were random

    def test_kernel_attribute_matches_variant(self):
        assert GPEiTuner(_space()).kernel == "se"
        assert GPMatern52EiTuner(_space()).kernel == "matern52"

    def test_invalid_acquisition_rejected(self):
        with pytest.raises(ValueError):
            GPTuner(_space(), acquisition="magic")

    def test_proposals_stay_in_bounds_after_model_kicks_in(self):
        tuner = GPEiTuner(_space(), min_trials=2, n_candidates=30, random_state=0)
        for _ in range(10):
            params = tuner.propose()
            assert 0.0 <= params[("m", "x")] <= 1.0
            assert 1 <= params[("m", "n")] <= 10
            tuner.record(params, _branin_like(params))


class TestMetaModelMemoization:
    """The GP meta-model is fit at most once per training-data state."""

    def _counting_tuner(self, monkeypatch, **kwargs):
        fits = {"n": 0}
        tuner = GPEiTuner(_space(), min_trials=3, random_state=0, **kwargs)
        real_class = tuner.meta_model_class

        class CountingModel(real_class):
            def fit(self, X, y):
                fits["n"] += 1
                return super().fit(X, y)

        tuner.meta_model_class = CountingModel
        return tuner, fits

    def _warm_up(self, tuner):
        for score in (0.1, 0.5, 0.3, 0.7):
            params = tuner.propose()
            tuner.record(params, score)

    def test_unchanged_state_reuses_the_fitted_model(self, monkeypatch):
        tuner, fits = self._counting_tuner(monkeypatch)
        self._warm_up(tuner)
        tuner.propose()
        assert fits["n"] == 2  # propose 4 (after min_trials) + propose 5
        tuner.propose()
        tuner.propose()
        assert fits["n"] == 2  # nothing recorded in between: no refit

    def test_record_and_failure_dirty_the_model(self, monkeypatch):
        tuner, fits = self._counting_tuner(monkeypatch)
        self._warm_up(tuner)
        params = tuner.propose()
        fitted = fits["n"]
        tuner.record(params, 0.9)
        tuner.propose()
        assert fits["n"] == fitted + 1
        tuner.record_failure(params)
        tuner.propose()
        assert fits["n"] == fitted + 2

    def test_pending_bookkeeping_reuses_the_stale_model(self, monkeypatch):
        # the hot-path contract: proposals that only add/resolve pending
        # entries (the window-refill pattern: propose -> add_pending ->
        # propose again before any result lands) reuse the cached model
        # instead of re-running the length-scale grid — the stale-model
        # approximation of asynchronous Bayesian optimization
        tuner, fits = self._counting_tuner(monkeypatch)
        self._warm_up(tuner)
        params = tuner.propose()
        fitted = fits["n"]
        tuner.add_pending(params)
        tuner.propose()
        tuner.resolve_pending(params)
        tuner.propose()
        assert fits["n"] == fitted  # no new observation, no refit
        tuner.record(params, 0.8)
        tuner.propose()
        assert fits["n"] == fitted + 1  # a genuine observation refits

    def test_batch_proposal_fits_once_and_scores_vectorized(self, monkeypatch):
        tuner, fits = self._counting_tuner(monkeypatch)
        self._warm_up(tuner)
        scored_batches = []
        real_score = tuner._score_candidates

        def counting_score(model, candidates):
            scored_batches.append(len(candidates))
            return real_score(model, candidates)

        monkeypatch.setattr(tuner, "_score_candidates", counting_score)
        before = fits["n"]
        batch = tuner.propose(n=4)
        assert fits["n"] == before + 1  # one fit for the whole batch
        assert scored_batches == [tuner.n_candidates * 4]  # one vectorized pass
        assert len(batch) == 4
        for i in range(len(batch)):
            for j in range(i + 1, len(batch)):
                assert batch[i] != batch[j]
        assert tuner.pending == []  # no liar state left behind


class TestTunerRegistry:
    def test_lookup_by_name(self):
        assert get_tuner("gp_ei") is GPEiTuner
        assert get_tuner("gp_matern52_ei") is GPMatern52EiTuner
        assert get_tuner("uniform") is UniformTuner

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_tuner("simulated_annealing")
