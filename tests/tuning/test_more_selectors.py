"""Tests for the additional selectors (best-K velocity, Thompson sampling)."""

import numpy as np
import pytest

from repro.tuning.selectors import (
    BestKVelocitySelector,
    ThompsonSamplingSelector,
    get_selector,
)


class TestBestKVelocitySelector:
    def test_rewards_measure_improvement_speed(self):
        selector = BestKVelocitySelector(["a"], k=3)
        improving = selector.compute_rewards([0.1, 0.2, 0.4, 0.8])
        flat = selector.compute_rewards([0.8, 0.8, 0.8, 0.8])
        assert improving[0] > flat[0]

    def test_single_score_uses_value_itself(self):
        selector = BestKVelocitySelector(["a"], k=2)
        assert selector.compute_rewards([0.7]) == [0.7]

    def test_prefers_still_improving_template(self):
        selector = BestKVelocitySelector(["improving", "plateaued"], k=2, random_state=0)
        scores = {
            "improving": [0.3, 0.5, 0.7],
            "plateaued": [0.71, 0.72, 0.72],
        }
        assert selector.select(scores) == "improving"

    def test_registered_by_name(self):
        assert get_selector("best_k_velocity") is BestKVelocitySelector


class TestThompsonSamplingSelector:
    def test_unseen_candidates_first(self):
        selector = ThompsonSamplingSelector(["a", "b"], random_state=0)
        assert selector.select({"a": [0.9]}) == "b"

    def test_clearly_better_arm_dominates(self):
        selector = ThompsonSamplingSelector(["good", "bad"], random_state=0)
        scores = {"good": [0.9, 0.92, 0.91], "bad": [0.1, 0.12, 0.09]}
        picks = [selector.select(scores) for _ in range(20)]
        assert picks.count("good") >= 18

    def test_similar_arms_both_get_picked(self):
        selector = ThompsonSamplingSelector(["a", "b"], random_state=0)
        scores = {"a": [0.5, 0.52], "b": [0.51, 0.5]}
        picks = {selector.select(scores) for _ in range(40)}
        assert picks == {"a", "b"}

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            ThompsonSamplingSelector(["a"], prior_std=0.0)

    def test_registered_by_name(self):
        assert get_selector("thompson") is ThompsonSamplingSelector

    def test_accumulates_more_pulls_on_better_arm(self, rng):
        selector = ThompsonSamplingSelector(["good", "bad"], random_state=1)
        scores = {"good": [], "bad": []}
        true_means = {"good": 0.8, "bad": 0.5}
        for _ in range(60):
            arm = selector.select(scores)
            scores[arm].append(float(np.clip(rng.normal(true_means[arm], 0.05), 0, 1)))
        assert len(scores["good"]) > len(scores["bad"])
