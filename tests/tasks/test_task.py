"""Tests for the MLTask abstraction, splitting and scoring."""

import numpy as np
import pytest

from repro.tasks.task import MLTask, split_task, task_cv_splits
from repro.tasks.types import TaskType


def _simple_task(n=40, ordered=False, metric=None):
    rng = np.random.RandomState(0)
    X = rng.normal(size=(n, 3))
    y = rng.randint(0, 2, size=n)
    return MLTask(
        name="toy",
        data_modality="single_table",
        problem_type="classification",
        context={"X": X, "y": y},
        metric=metric,
        ordered=ordered,
    )


class TestMLTask:
    def test_requires_target(self):
        with pytest.raises(ValueError, match="'y'"):
            MLTask("t", "single_table", "classification", {"X": np.ones((3, 2))})

    def test_task_type_property(self):
        task = _simple_task()
        assert task.task_type == TaskType("single_table", "classification")

    def test_default_metric_from_problem_type(self):
        assert _simple_task().metric == "f1_macro"

    def test_explicit_metric_respected(self):
        assert _simple_task(metric="accuracy").metric == "accuracy"

    def test_sample_alignment_validated(self):
        with pytest.raises(ValueError, match="static_keys"):
            MLTask("t", "single_table", "classification",
                   {"X": np.ones((5, 2)), "y": np.zeros(5), "extra": np.ones(3)})

    def test_static_keys_skip_alignment_check(self):
        task = MLTask("t", "graph", "link_prediction",
                      {"X": np.ones((5, 2)), "y": np.zeros(5), "graph": object()},
                      static_keys={"graph"})
        assert task.n_samples == 5

    def test_subset_restricts_sample_keys_only(self):
        task = MLTask("t", "graph", "link_prediction",
                      {"X": np.arange(10).reshape(5, 2), "y": np.arange(5), "graph": "G"},
                      static_keys={"graph"})
        subset = task.subset([0, 2])
        assert subset.n_samples == 2
        assert subset.context["graph"] == "G"
        assert subset.context["y"].tolist() == [0, 2]

    def test_pipeline_data_excludes_target_when_asked(self):
        task = _simple_task()
        assert "y" in task.pipeline_data()
        assert "y" not in task.pipeline_data(include_target=False)

    def test_score_uses_configured_metric(self):
        task = _simple_task(metric="accuracy")
        y = task.context["y"]
        assert task.score(y, y) == 1.0

    def test_normalized_score_flips_losses(self):
        rng = np.random.RandomState(0)
        task = MLTask("t", "single_table", "regression",
                      {"X": rng.normal(size=(10, 2)), "y": rng.normal(size=10)},
                      metric="mse")
        y = task.context["y"]
        assert task.normalized_score(y, y) == 0.0
        assert task.normalized_score(y, y + 1.0) < 0.0

    def test_higher_is_better_flag(self):
        assert _simple_task().higher_is_better is True


class TestSplitTask:
    def test_split_sizes(self):
        train, test = split_task(_simple_task(40), test_size=0.25, random_state=0)
        assert train.n_samples == 30
        assert test.n_samples == 10

    def test_ordered_split_keeps_temporal_order(self):
        task = _simple_task(20, ordered=True)
        task.context["y"] = np.arange(20)
        train, test = split_task(task, test_size=0.25)
        assert train.context["y"].max() < test.context["y"].min()

    def test_unordered_split_is_random_but_disjoint(self):
        task = _simple_task(30)
        task.context["y"] = np.arange(30)
        train, test = split_task(task, test_size=0.3, random_state=1)
        assert set(train.context["y"]) & set(test.context["y"]) == set()
        assert len(set(train.context["y"]) | set(test.context["y"])) == 30

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            split_task(_simple_task(10), test_size=10)


class TestTaskCvSplits:
    def test_number_of_splits(self):
        splits = task_cv_splits(_simple_task(30), n_splits=3, random_state=0)
        assert len(splits) == 3

    def test_folds_are_disjoint(self):
        task = _simple_task(30)
        task.context["y"] = np.arange(30)
        splits = task_cv_splits(task, n_splits=3, random_state=0)
        for train, val in splits:
            assert set(train.context["y"]) & set(val.context["y"]) == set()

    def test_ordered_splits_use_expanding_window(self):
        task = _simple_task(40, ordered=True)
        task.context["y"] = np.arange(40)
        splits = task_cv_splits(task, n_splits=3)
        for train, val in splits:
            assert train.context["y"].max() < val.context["y"].min()

    def test_small_task_reduces_n_splits(self):
        splits = task_cv_splits(_simple_task(5), n_splits=5, random_state=0)
        assert len(splits) >= 2

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            task_cv_splits(_simple_task(20), n_splits=1)
