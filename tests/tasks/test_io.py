"""Tests for task and suite serialization (dataset folder layout)."""

import os

import numpy as np

from repro.tasks import build_task_suite, load_suite, load_task, save_suite, save_task, synth
from repro.tasks.types import TaskType


class TestSaveLoadTask:
    def test_tabular_roundtrip(self, tmp_path):
        task = synth.make_single_table_classification(random_state=0)
        save_task(task, tmp_path / "task")
        loaded = load_task(tmp_path / "task")
        assert loaded.name == task.name
        assert loaded.task_type == task.task_type
        assert loaded.metric == task.metric
        assert np.allclose(loaded.context["X"], task.context["X"])
        assert np.array_equal(loaded.context["y"], task.context["y"])

    def test_folder_layout(self, tmp_path):
        task = synth.make_single_table_regression(random_state=0)
        save_task(task, tmp_path / "task")
        assert (tmp_path / "task" / "task.json").exists()
        assert (tmp_path / "task" / "data.npz").exists()

    def test_ordered_flag_preserved(self, tmp_path):
        task = synth.make_timeseries_forecasting(random_state=0)
        save_task(task, tmp_path / "task")
        assert load_task(tmp_path / "task").ordered is True

    def test_text_task_roundtrip(self, tmp_path):
        task = synth.make_text_classification(random_state=0)
        save_task(task, tmp_path / "task")
        loaded = load_task(tmp_path / "task")
        assert list(loaded.context["X"]) == list(task.context["X"])

    def test_graph_task_roundtrip(self, tmp_path):
        task = synth.make_link_prediction(random_state=0)
        save_task(task, tmp_path / "task")
        loaded = load_task(tmp_path / "task")
        assert "graph" in loaded.static_keys
        assert loaded.context["graph"].number_of_nodes() == task.context["graph"].number_of_nodes()
        assert loaded.context["graph"].number_of_edges() == task.context["graph"].number_of_edges()

    def test_graph_node_ids_usable_after_roundtrip(self, tmp_path):
        from repro.learners.graph import link_prediction_feature_extraction

        task = synth.make_link_prediction(random_state=1)
        save_task(task, tmp_path / "task")
        loaded = load_task(tmp_path / "task")
        features = link_prediction_feature_extraction(
            loaded.context["graph"], loaded.context["X"][:5].astype(int)
        )
        assert np.any(features != 0.0)

    def test_multitable_task_roundtrip(self, tmp_path):
        task = synth.make_multi_table_regression(random_state=0)
        save_task(task, tmp_path / "task")
        loaded = load_task(tmp_path / "task")
        entityset = loaded.context["entityset"]
        assert set(entityset.entities) == {"customers", "transactions"}
        assert len(entityset.relationships) == 1

    def test_loaded_multitable_task_is_fittable(self, tmp_path):
        from repro.automl import get_templates

        task = synth.make_multi_table_classification(random_state=0)
        save_task(task, tmp_path / "task")
        loaded = load_task(tmp_path / "task")
        template = get_templates("multi_table", "classification")[0]
        pipeline = template.build_pipeline()
        pipeline.fit(**loaded.pipeline_data())
        assert pipeline.fitted

    def test_metadata_preserved(self, tmp_path):
        task = synth.make_single_table_classification(random_state=0)
        save_task(task, tmp_path / "task")
        loaded = load_task(tmp_path / "task")
        assert loaded.metadata == {str(k): v for k, v in task.metadata.items()} or loaded.metadata == task.metadata


class TestSaveLoadSuite:
    def test_suite_roundtrip(self, tmp_path):
        counts = {
            TaskType("single_table", "classification"): 2,
            TaskType("graph", "link_prediction"): 1,
        }
        suite = build_task_suite(counts=counts, random_state=0)
        save_suite(suite, tmp_path / "suite")
        loaded = load_suite(tmp_path / "suite")
        assert len(loaded) == len(suite)
        assert [t.name for t in loaded] == [t.name for t in suite]

    def test_index_file_written(self, tmp_path):
        suite = build_task_suite(
            counts={TaskType("single_table", "regression"): 1}, random_state=0
        )
        index_path = save_suite(suite, tmp_path / "suite")
        assert os.path.exists(index_path)
