"""Tests for the synthetic task generators and the Table II suite builder."""

import numpy as np
import pytest

from repro.learners.relational import EntitySet
from repro.tasks import TABLE_II_COUNTS, TASK_TYPES, build_task_suite, synth
from repro.tasks.suite import scaled_counts
from repro.tasks.types import TaskType, default_metric


class TestGenerators:
    def test_single_table_classification_learnable(self):
        task = synth.make_single_table_classification(random_state=0)
        assert task.task_type == TaskType("single_table", "classification")
        assert set(np.unique(task.context["y"])) == {0, 1}

    def test_single_table_regression_shapes(self):
        task = synth.make_single_table_regression(n_samples=80, n_features=5, random_state=0)
        assert task.context["X"].shape == (80, 5)
        assert task.context["y"].shape == (80,)

    def test_collaborative_filtering_ids_within_bounds(self):
        task = synth.make_collaborative_filtering(n_users=10, n_items=7, random_state=0)
        X = task.context["X"]
        assert X[:, 0].max() < 10
        assert X[:, 1].max() < 7

    def test_forecasting_task_is_ordered(self):
        task = synth.make_timeseries_forecasting(random_state=0)
        assert task.ordered is True
        assert task.problem_type == "timeseries_forecasting"

    def test_multi_table_tasks_carry_entitysets(self):
        for generator in (synth.make_multi_table_classification,
                          synth.make_multi_table_regression):
            task = generator(random_state=0)
            assert isinstance(task.context["entityset"], EntitySet)
            assert "entityset" in task.static_keys

    def test_timeseries_classification_shapes(self):
        task = synth.make_timeseries_classification(n_samples=50, series_length=20, random_state=0)
        assert task.context["X"].shape == (50, 20)

    def test_text_tasks_produce_strings(self):
        task = synth.make_text_classification(random_state=0)
        assert isinstance(task.context["X"][0], str)
        regression = synth.make_text_regression(random_state=0)
        assert regression.metric == "r2"

    def test_image_tasks_are_3d(self):
        task = synth.make_image_classification(n_samples=20, image_size=8, random_state=0)
        assert task.context["X"].shape == (20, 8, 8)

    def test_graph_tasks_have_static_graph(self):
        for generator in (synth.make_community_detection, synth.make_vertex_nomination,
                          synth.make_link_prediction, synth.make_graph_matching):
            task = generator(random_state=0)
            assert "graph" in task.static_keys
            assert task.data_modality == "graph"

    def test_link_prediction_balanced_labels(self):
        task = synth.make_link_prediction(random_state=0)
        y = task.context["y"]
        assert 0.3 < y.mean() < 0.7

    def test_community_detection_uses_ari(self):
        task = synth.make_community_detection(random_state=0)
        assert task.metric == "adjusted_rand"

    def test_generators_reproducible(self):
        a = synth.make_single_table_classification(random_state=5)
        b = synth.make_single_table_classification(random_state=5)
        assert np.allclose(a.context["X"], b.context["X"])

    def test_anomaly_signal_contains_injected_intervals(self):
        signal, anomalies = synth.make_anomaly_signal(length=400, n_anomalies=2, random_state=0)
        assert signal.shape == (400, 2)
        assert len(anomalies) == 2
        for start, end in anomalies:
            assert 0 <= start <= end < 400


class TestSuite:
    def test_table_ii_totals(self):
        assert sum(TABLE_II_COUNTS.values()) == 456
        assert len(TABLE_II_COUNTS) == 15

    def test_scaled_counts_cover_every_type(self):
        counts = scaled_counts(30)
        assert set(counts) == set(TABLE_II_COUNTS)
        assert all(count >= 1 for count in counts.values())

    def test_scaled_counts_proportional(self):
        counts = scaled_counts(60)
        most_common = max(counts, key=counts.get)
        assert most_common == TaskType("single_table", "classification")

    def test_scaled_counts_minimum_total(self):
        with pytest.raises(ValueError):
            scaled_counts(5)

    def test_build_suite_covers_all_task_types(self):
        suite = build_task_suite(total_tasks=20, random_state=0)
        assert set(suite.counts_by_task_type()) == set(TASK_TYPES)

    def test_build_suite_with_explicit_counts(self):
        counts = {TaskType("single_table", "classification"): 3}
        suite = build_task_suite(counts=counts, random_state=0)
        assert len(suite) == 3

    def test_suite_task_names_unique(self):
        suite = build_task_suite(total_tasks=20, random_state=0)
        names = [task.name for task in suite]
        assert len(names) == len(set(names))

    def test_suite_filter(self):
        suite = build_task_suite(total_tasks=20, random_state=0)
        graph_only = suite.filter(data_modality="graph")
        assert all(task.data_modality == "graph" for task in graph_only)

    def test_suite_get_by_name(self):
        suite = build_task_suite(total_tasks=20, random_state=0)
        name = suite[0].name
        assert suite.get(name) is suite[0]
        with pytest.raises(KeyError):
            suite.get("missing-task")

    def test_suite_reproducible(self):
        a = build_task_suite(total_tasks=16, random_state=3)
        b = build_task_suite(total_tasks=16, random_state=3)
        assert [t.name for t in a] == [t.name for t in b]


class TestTaskTypes:
    def test_fifteen_task_types(self):
        assert len(TASK_TYPES) == 15

    def test_default_metric_known_for_every_problem_type(self):
        for task_type in TASK_TYPES:
            assert isinstance(default_metric(task_type.problem_type), str)

    def test_default_metric_unknown_problem(self):
        with pytest.raises(ValueError):
            default_metric("speech_transcription")
