"""Property-based tests for hyperparameter spaces, tuners and graph recovery."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import MLPipeline
from repro.core.graph import edge_data_items
from repro.tuning.hyperparams import (
    BooleanHyperparam,
    CategoricalHyperparam,
    FloatHyperparam,
    IntHyperparam,
    Tunable,
)
from repro.tuning.tuners import UniformTuner


# strategies for building random tunable spaces -------------------------------------

def _int_hp(name):
    return st.tuples(st.integers(-20, 20), st.integers(0, 40)).map(
        lambda bounds: IntHyperparam(name, bounds[0], bounds[0] + bounds[1])
    )


def _float_hp(name):
    return st.tuples(
        st.floats(-100, 100, allow_nan=False), st.floats(0.1, 50, allow_nan=False)
    ).map(lambda bounds: FloatHyperparam(name, bounds[0], bounds[0] + bounds[1]))


def _cat_hp(name):
    return st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=5, unique=True).map(
        lambda values: CategoricalHyperparam(name, values)
    )


def _bool_hp(name):
    return st.just(BooleanHyperparam(name))


def tunable_spaces():
    def build(kinds):
        hyperparams = {}
        for index, kind in enumerate(kinds):
            name = "hp{}".format(index)
            hyperparams[("step", name)] = kind
        return Tunable(hyperparams)

    single = st.one_of(_int_hp("x"), _float_hp("x"), _cat_hp("x"), _bool_hp("x"))
    return st.lists(single, min_size=1, max_size=5).map(build)


class TestTunableProperties:
    @given(space=tunable_spaces(), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_samples_roundtrip_through_vectorization(self, space, seed):
        rng = np.random.RandomState(seed)
        params = space.sample(rng)
        vector = space.to_vector(params)
        assert len(vector) == space.dimensions
        assert np.all(vector >= 0.0) and np.all(vector <= 1.0)
        recovered = space.from_vector(vector)
        # int/float values may shift by rounding, but category/bool are exact
        for key, hyperparam in space.hyperparams.items():
            if isinstance(hyperparam, (CategoricalHyperparam, BooleanHyperparam)):
                assert recovered[key] == params[key]

    @given(space=tunable_spaces(), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_defaults_vectorize(self, space, seed):
        vector = space.to_vector(space.defaults())
        assert np.all(vector >= 0.0) and np.all(vector <= 1.0)

    @given(space=tunable_spaces(), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_uniform_tuner_proposals_always_valid(self, space, seed):
        tuner = UniformTuner(space, random_state=seed)
        for _ in range(5):
            params = tuner.propose()
            vector = space.to_vector(params)
            assert np.all(vector >= 0.0) and np.all(vector <= 1.0)
            tuner.record(params, float(seed % 7))


#: Primitive chains that are valid pipelines regardless of how many of the
#: optional middle transformers are kept.
_MIDDLE_STEPS = [
    "sklearn.impute.SimpleImputer",
    "sklearn.preprocessing.StandardScaler",
    "sklearn.preprocessing.MinMaxScaler",
    "sklearn.preprocessing.RobustScaler",
]


class TestGraphRecoveryProperties:
    @given(
        middle=st.lists(st.sampled_from(_MIDDLE_STEPS), min_size=0, max_size=4),
        estimator=st.sampled_from(["xgboost.XGBRegressor", "sklearn.linear_model.Ridge",
                                   "sklearn.ensemble.RandomForestRegressor"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_transformer_chain_recovers_a_connected_dag(self, middle, estimator):
        import networkx as nx

        pipeline = MLPipeline(middle + [estimator])
        graph = pipeline.graph(inputs=["X", "y"])
        assert nx.is_directed_acyclic_graph(graph)
        # every pipeline step appears in the graph and has at least one edge
        step_names = {step.name for step in pipeline.steps}
        nodes_with_edges = {u for u, _, _ in edge_data_items(graph)} | {
            v for _, v, _ in edge_data_items(graph)
        }
        assert step_names <= nodes_with_edges

    @given(middle=st.lists(st.sampled_from(_MIDDLE_STEPS), min_size=0, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_x_flows_through_every_transformer_exactly_once(self, middle):
        pipeline = MLPipeline(middle + ["sklearn.linear_model.Ridge"])
        graph = pipeline.graph(inputs=["X", "y"])
        x_edges = [edge for edge in edge_data_items(graph) if edge[2] == "X"]
        # a chain of k transformers plus the estimator consumes X k+1 times
        assert len(x_edges) == len(middle) + 1
