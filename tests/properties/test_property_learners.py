"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.learners import metrics
from repro.learners.preprocessing import LabelEncoder, MinMaxScaler, StandardScaler
from repro.learners.text import pad_sequences


# reusable strategies -----------------------------------------------------------

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)

# feature values are rounded to a coarse grid so that near-constant columns do
# not trigger catastrophic cancellation (a float artifact, not a code bug)
feature_values = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                           allow_infinity=False).map(lambda value: round(value, 3))


def feature_matrices(min_rows=2, max_rows=30, min_cols=1, max_cols=6):
    return hnp.arrays(
        dtype=float,
        shape=st.tuples(st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)),
        elements=feature_values,
    )


class TestScalerProperties:
    @given(X=feature_matrices())
    @settings(max_examples=40, deadline=None)
    def test_standard_scaler_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        restored = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(restored, X, atol=1e-6 * (1 + np.abs(X).max()))

    @given(X=feature_matrices())
    @settings(max_examples=40, deadline=None)
    def test_minmax_scaler_output_in_unit_interval(self, X):
        transformed = MinMaxScaler().fit_transform(X)
        assert transformed.min() >= -1e-9
        assert transformed.max() <= 1.0 + 1e-9

    @given(X=feature_matrices())
    @settings(max_examples=40, deadline=None)
    def test_standard_scaler_output_is_centered(self, X):
        transformed = StandardScaler().fit_transform(X)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-6)


class TestLabelEncoderProperties:
    @given(labels=st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, labels):
        encoder = LabelEncoder().fit(labels)
        encoded = encoder.transform(labels)
        assert np.array_equal(encoder.inverse_transform(encoded), np.asarray(labels))

    @given(labels=st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_encoded_values_are_dense(self, labels):
        encoder = LabelEncoder().fit(labels)
        encoded = encoder.transform(labels)
        assert encoded.min() >= 0
        assert encoded.max() < len(np.unique(labels))


class TestPadSequencesProperties:
    @given(
        sequences=st.lists(st.lists(st.integers(1, 100), max_size=20), min_size=1, max_size=20),
        maxlen=st.integers(1, 25),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_shape_and_membership(self, sequences, maxlen):
        padded = pad_sequences(sequences, maxlen=maxlen)
        assert padded.shape == (len(sequences), maxlen)
        for row, sequence in zip(padded, sequences):
            non_padding = row[row != 0]
            assert set(non_padding.tolist()) <= set(sequence)

    @given(sequences=st.lists(st.lists(st.integers(1, 9), min_size=1, max_size=10),
                              min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_truncation_preserves_tail_by_default(self, sequences):
        padded = pad_sequences(sequences, maxlen=3)
        for row, sequence in zip(padded, sequences):
            tail = sequence[-3:]
            assert row[-len(tail):].tolist() == tail


class TestMetricProperties:
    @given(y=hnp.arrays(dtype=int, shape=st.integers(1, 60), elements=st.integers(0, 4)))
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_maximizes_classification_metrics(self, y):
        assert metrics.accuracy_score(y, y) == 1.0
        assert metrics.f1_score(y, y) == 1.0

    @given(y=hnp.arrays(dtype=float, shape=st.integers(2, 60), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_zero_regression_error(self, y):
        assert metrics.mean_squared_error(y, y) == 0.0
        assert metrics.mean_absolute_error(y, y) == 0.0

    @given(
        y_true=hnp.arrays(dtype=int, shape=20, elements=st.integers(0, 3)),
        y_pred=hnp.arrays(dtype=int, shape=20, elements=st.integers(0, 3)),
    )
    @settings(max_examples=60, deadline=None)
    def test_classification_metrics_bounded(self, y_true, y_pred):
        assert 0.0 <= metrics.accuracy_score(y_true, y_pred) <= 1.0
        assert 0.0 <= metrics.f1_score(y_true, y_pred) <= 1.0
        assert 0.0 <= metrics.precision_score(y_true, y_pred) <= 1.0
        assert 0.0 <= metrics.recall_score(y_true, y_pred) <= 1.0

    @given(
        y_true=hnp.arrays(dtype=float, shape=15, elements=finite_floats),
        y_pred=hnp.arrays(dtype=float, shape=15, elements=finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_mse_is_symmetric_and_nonnegative(self, y_true, y_pred):
        forward = metrics.mean_squared_error(y_true, y_pred)
        backward = metrics.mean_squared_error(y_pred, y_true)
        assert forward >= 0.0
        assert np.isclose(forward, backward)

    @given(labels=hnp.arrays(dtype=int, shape=st.integers(2, 40), elements=st.integers(0, 5)))
    @settings(max_examples=40, deadline=None)
    def test_ari_is_one_for_identical_partitions(self, labels):
        assert metrics.adjusted_rand_score(labels, labels) == 1.0

    @given(
        labels=hnp.arrays(dtype=int, shape=st.integers(2, 40), elements=st.integers(0, 5)),
        permutation_seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_ari_invariant_to_label_permutation(self, labels, permutation_seed):
        rng = np.random.RandomState(permutation_seed)
        mapping = rng.permutation(6)
        relabeled = mapping[labels]
        assert metrics.adjusted_rand_score(labels, relabeled) == 1.0
