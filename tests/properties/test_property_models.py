"""Property-based tests for model invariants (predictions, probabilities, DFS)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.learners.relational import EntitySet, dfs
from repro.learners.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    RandomForestRegressor,
)

feature_values = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False,
                           allow_infinity=False).map(lambda value: round(value, 2))


def datasets(max_rows=40, max_cols=4):
    """Strategy producing (X, y_classification, y_regression) triples."""

    def build(args):
        X, labels, targets = args
        return np.asarray(X), np.asarray(labels) % 3, np.asarray(targets)

    shape = st.tuples(st.integers(8, max_rows), st.integers(1, max_cols))
    return shape.flatmap(
        lambda dims: st.tuples(
            hnp.arrays(dtype=float, shape=dims, elements=feature_values),
            hnp.arrays(dtype=int, shape=dims[0], elements=st.integers(0, 2)),
            hnp.arrays(dtype=float, shape=dims[0], elements=feature_values),
        ).map(build)
    )


class TestTreeModelProperties:
    @given(data=datasets())
    @settings(max_examples=25, deadline=None)
    def test_regression_predictions_within_target_range(self, data):
        X, _, y = data
        model = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
        predictions = model.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @given(data=datasets())
    @settings(max_examples=25, deadline=None)
    def test_forest_predictions_within_target_range(self, data):
        X, _, y = data
        model = RandomForestRegressor(n_estimators=4, random_state=0).fit(X, y)
        predictions = model.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @given(data=datasets())
    @settings(max_examples=25, deadline=None)
    def test_classifier_predictions_are_known_labels(self, data):
        X, y, _ = data
        if len(np.unique(y)) < 2:
            y = y.copy()
            y[0] = (y[0] + 1) % 3
        model = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        assert set(model.predict(X)) <= set(np.unique(y))

    @given(data=datasets())
    @settings(max_examples=15, deadline=None)
    def test_boosting_probabilities_are_valid(self, data):
        X, y, _ = data
        if len(np.unique(y)) < 2:
            y = y.copy()
            y[0] = (y[0] + 1) % 3
        model = GradientBoostingClassifier(n_estimators=4, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0.0)
        assert np.all(proba <= 1.0 + 1e-9)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)


class TestDFSProperties:
    @given(
        n_parents=st.integers(2, 8),
        n_children=st.integers(0, 30),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=30, deadline=None)
    def test_feature_matrix_always_aligned_with_parents(self, n_parents, n_children, seed):
        rng = np.random.RandomState(seed)
        entityset = EntitySet("prop")
        entityset.add_entity("parents", {
            "parent_id": np.arange(n_parents),
            "value": rng.normal(size=n_parents),
        }, index="parent_id")
        entityset.add_entity("children", {
            "child_id": np.arange(n_children),
            "parent_id": rng.randint(0, n_parents, size=n_children),
            "amount": rng.normal(size=n_children),
        }, index="child_id")
        entityset.add_relationship("parents", "parent_id", "children", "parent_id")

        matrix, names = dfs(entityset, "parents")
        assert matrix.shape[0] == n_parents
        assert matrix.shape[1] == len(names)
        assert np.all(np.isfinite(matrix))
        # the COUNT feature sums to the number of children
        count_column = names.index("parents.COUNT(children)")
        assert matrix[:, count_column].sum() == n_children
