"""Tests for the per-task-type template catalog (paper Table II defaults)."""

import pytest

from repro.automl.catalog import TemplateCatalog, default_template_catalog, get_templates
from repro.core.template import Template
from repro.tasks.types import TASK_TYPES


class TestTemplateCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        return TemplateCatalog()

    def test_every_task_type_has_templates(self, catalog):
        for task_type in TASK_TYPES:
            templates = catalog.get(task_type.data_modality, task_type.problem_type)
            assert templates, "no templates for {}".format(task_type)

    def test_default_template_is_first(self, catalog):
        default = catalog.default_template("single_table", "classification")
        assert default.name == "single_table_classification_xgb"

    def test_table_ii_default_uses_xgb_for_tabular(self, catalog):
        for modality in ("single_table", "multi_table", "timeseries"):
            default = catalog.default_template(modality, "classification")
            assert "xgboost.XGBClassifier" in default.primitives

    def test_text_default_is_lstm_template(self, catalog):
        default = catalog.default_template("text", "classification")
        assert "keras.Sequential.LSTMTextClassifier" in default.primitives

    def test_collaborative_filtering_uses_lightfm(self, catalog):
        default = catalog.default_template("single_table", "collaborative_filtering")
        assert "lightfm.LightFM" in default.primitives

    def test_community_detection_uses_louvain(self, catalog):
        default = catalog.default_template("graph", "community_detection")
        assert default.primitives == ["community.best_partition"]

    def test_image_default_uses_pretrained_cnn(self, catalog):
        default = catalog.default_template("image", "classification")
        assert "keras.applications.mobilenet.MobileNet" in default.primitives

    def test_unknown_task_type_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("audio", "transcription")

    def test_variant_filter_returns_matching_estimator(self, catalog):
        xgb_templates = catalog.get("single_table", "classification", variant="xgb")
        assert all("xgb" in t.name for t in xgb_templates)
        rf_templates = catalog.get("single_table", "classification", variant="rf")
        assert all("rf" in t.name for t in rf_templates)

    def test_variant_filter_fallback_when_no_match(self, catalog):
        templates = catalog.get("graph", "community_detection", variant="rf")
        assert templates  # falls back to the unfiltered list

    def test_every_template_has_tunable_space_or_is_trivial(self, catalog):
        for task_type in TASK_TYPES:
            for template in catalog.get(task_type.data_modality, task_type.problem_type):
                space = template.get_tunable_hyperparameters()
                assert isinstance(space, dict)

    def test_every_template_builds_a_pipeline(self, catalog):
        for task_type in TASK_TYPES:
            for template in catalog.get(task_type.data_modality, task_type.problem_type):
                pipeline = template.build_pipeline()
                assert pipeline.primitives == template.primitives

    def test_add_custom_template(self):
        catalog = TemplateCatalog()
        custom = Template("custom_clf", ["sklearn.naive_bayes.GaussianNB"])
        catalog.add("single_table", "classification", custom)
        names = [t.name for t in catalog.get("single_table", "classification")]
        assert "custom_clf" in names

    def test_add_custom_template_as_default(self):
        catalog = TemplateCatalog()
        custom = Template("custom_clf", ["sklearn.naive_bayes.GaussianNB"])
        catalog.add("single_table", "classification", custom, default=True)
        assert catalog.default_template("single_table", "classification").name == "custom_clf"

    def test_module_level_helpers(self):
        assert default_template_catalog() is default_template_catalog()
        templates = get_templates("single_table", "regression")
        assert templates[0].name == "single_table_regression_xgb"
