"""Tests for batched multi-candidate evaluation (repro.automl.batch_eval)."""

import numpy as np
import pytest

from repro.automl import AutoBazaarSearch, evaluate_pipeline
from repro.automl.backends import EvaluationCandidate, SerialBackend
from repro.automl.batch_eval import evaluate_candidate_group, group_candidates
from repro.core.template import Template
from repro.learners.linear import Lasso, LinearRegression, LogisticRegression, Ridge
from repro.learners.naive_bayes import GaussianNB
from repro.learners.neighbors import KNeighborsClassifier, KNeighborsRegressor
from repro.tasks import synth
from repro.tasks.task import split_task
from repro.tuning.tuners import UniformTuner

ENCODER = "mlprimitives.custom.feature_extraction.CategoricalEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
IMPUTER = "sklearn.impute.SimpleImputer"


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(120, 6))
    y = X @ rng.normal(size=6) + 0.1 * rng.normal(size=120)
    return X, y


@pytest.fixture(scope="module")
def classification_data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(120, 6))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.int64)
    return X, y


def assert_models_identical(batched, looped, attributes):
    assert len(batched) == len(looped)
    for fast, slow in zip(batched, looped):
        for attribute in attributes:
            np.testing.assert_array_equal(
                np.asarray(getattr(fast, attribute)),
                np.asarray(getattr(slow, attribute)),
                err_msg=attribute,
            )


class TestFitBatchBitIdentity:
    def test_ridge_shares_gram_matrix(self, regression_data):
        X, y = regression_data
        configs = [{"alpha": alpha, "fit_intercept": flag}
                   for alpha in (0.0, 0.1, 1.0, 10.0) for flag in (True, False)]
        batched = Ridge.fit_batch(configs, X, y)
        looped = [Ridge(**config).fit(X, y) for config in configs]
        assert_models_identical(batched, looped, ["coef_", "intercept_"])

    def test_ridge_batch_validates_alpha_like_fit(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="alpha must be non-negative"):
            Ridge.fit_batch([{"alpha": 1.0}, {"alpha": -1.0}], X, y)

    def test_linear_regression_dedupes_solves(self, regression_data):
        X, y = regression_data
        configs = [{"fit_intercept": True}, {"fit_intercept": False},
                   {"fit_intercept": True}]
        batched = LinearRegression.fit_batch(configs, X, y)
        looped = [LinearRegression(**config).fit(X, y) for config in configs]
        assert_models_identical(batched, looped, ["coef_", "intercept_"])

    def test_logistic_shares_descent_trajectories(self, classification_data):
        X, y = classification_data
        configs = [
            {"C": 1.0, "max_iter": 50},
            {"C": 1.0, "max_iter": 200},   # same trajectory, later snapshot
            {"C": 0.1, "max_iter": 200},
            {"C": 1.0, "max_iter": 0},     # degenerate budget
            {"C": 1.0, "max_iter": 200, "fit_intercept": False},
        ]
        batched = LogisticRegression.fit_batch(configs, X, y)
        looped = [LogisticRegression(**config).fit(X, y) for config in configs]
        assert_models_identical(batched, looped, ["coef_", "intercept_", "classes_"])
        for fast, slow in zip(batched, looped):
            np.testing.assert_array_equal(fast.predict_proba(X), slow.predict_proba(X))

    def test_knn_shares_distance_matrix(self, classification_data):
        X, y = classification_data
        train_X, train_y = X[:90], y[:90]
        configs = [{"n_neighbors": k, "weights": weights}
                   for k in (1, 3, 7) for weights in ("uniform", "distance")]
        batched = KNeighborsClassifier.fit_batch(configs, train_X, train_y)
        looped = [KNeighborsClassifier(**config).fit(train_X, train_y)
                  for config in configs]
        fast_out = KNeighborsClassifier.batch_predict(batched, X[90:])
        for fast, prediction, slow in zip(batched, fast_out, looped):
            np.testing.assert_array_equal(prediction, slow.predict(X[90:]))
            np.testing.assert_array_equal(fast.predict_proba(X[90:]),
                                          slow.predict_proba(X[90:]))

    def test_knn_regressor_batch(self, regression_data):
        X, y = regression_data
        configs = [{"n_neighbors": k, "weights": weights}
                   for k in (2, 5) for weights in ("uniform", "distance")]
        batched = KNeighborsRegressor.fit_batch(configs, X[:90], y[:90])
        looped = [KNeighborsRegressor(**config).fit(X[:90], y[:90])
                  for config in configs]
        predictions = KNeighborsRegressor.batch_predict(batched, X[90:])
        for prediction, slow in zip(predictions, looped):
            np.testing.assert_array_equal(prediction, slow.predict(X[90:]))

    def test_batch_predict_without_shared_training_set_loops(self, classification_data):
        X, y = classification_data
        one = KNeighborsClassifier(n_neighbors=3).fit(X[:50], y[:50])
        other = KNeighborsClassifier(n_neighbors=3).fit(X[50:100], y[50:100])
        batched = KNeighborsClassifier.batch_predict([one, other], X[100:])
        np.testing.assert_array_equal(batched[0], one.predict(X[100:]))
        np.testing.assert_array_equal(batched[1], other.predict(X[100:]))

    def test_gaussian_nb_dedupes_identical_configs(self, classification_data):
        X, y = classification_data
        configs = [{"var_smoothing": 1e-9}, {"var_smoothing": 1e-9},
                   {"var_smoothing": 1e-3}]
        batched = GaussianNB.fit_batch(configs, X, y)
        looped = [GaussianNB(**config).fit(X, y) for config in configs]
        assert_models_identical(batched, looped,
                                ["theta_", "var_", "class_prior_", "classes_"])
        assert batched[0] is batched[1]  # duplicates share one fitted instance
        assert batched[0] is not batched[2]


class TestEvaluateCandidateGroup:
    def _regression_tasks(self):
        task = synth.make_single_table_regression(n_samples=120, random_state=0)
        return split_task(task, test_size=0.3, random_state=0)

    def _group_matches_loop(self, template, hyperparameters_list):
        train, val = self._regression_tasks()
        payloads = evaluate_candidate_group(template, hyperparameters_list, train, val)
        assert len(payloads) == len(hyperparameters_list)
        for payload, hyperparameters in zip(payloads, hyperparameters_list):
            if payload["error"] is None:
                normalized, raw, _ = evaluate_pipeline(
                    template, hyperparameters, train, val
                )
                assert payload["score"] == normalized
                assert payload["raw_score"] == raw
            else:
                with pytest.raises(Exception) as failure:
                    evaluate_pipeline(template, hyperparameters, train, val)
                expected = "{}: {}".format(type(failure.value).__name__, failure.value)
                assert payload["error"] == expected
        return payloads

    def test_ridge_group_scores_match_looped(self):
        template = Template("batch_ridge", [IMPUTER, "sklearn.linear_model.Ridge"])
        self._group_matches_loop(template, [
            {("sklearn.linear_model.Ridge#0", "alpha"): alpha}
            for alpha in (0.01, 0.1, 1.0, 10.0)
        ])

    def test_group_preserves_error_strings(self):
        template = Template("batch_ridge", [IMPUTER, "sklearn.linear_model.Ridge"])
        payloads = self._group_matches_loop(template, [
            {("sklearn.linear_model.Ridge#0", "alpha"): 1.0},
            {("sklearn.linear_model.Ridge#0", "alpha"): -1.0},
        ])
        assert payloads[0]["error"] is None
        assert payloads[1]["error"] is not None
        assert "alpha must be non-negative" in payloads[1]["error"]

    def test_non_batchable_learner_loops_transparently(self):
        template = Template("batch_lasso", [IMPUTER, "sklearn.linear_model.Lasso"])
        assert not getattr(Lasso, "supports_batch_fit", False)
        self._group_matches_loop(template, [
            {("sklearn.linear_model.Lasso#0", "alpha"): alpha}
            for alpha in (0.01, 0.1)
        ])

    def test_mixed_prefix_configurations_split_into_subgroups(self):
        template = Template(
            "batch_scaled_ridge",
            [IMPUTER, "sklearn.preprocessing.StandardScaler", "sklearn.linear_model.Ridge"],
        )
        self._group_matches_loop(template, [
            {("sklearn.preprocessing.StandardScaler#0", "with_mean"): True,
             ("sklearn.linear_model.Ridge#0", "alpha"): 0.1},
            {("sklearn.preprocessing.StandardScaler#0", "with_mean"): True,
             ("sklearn.linear_model.Ridge#0", "alpha"): 1.0},
            {("sklearn.preprocessing.StandardScaler#0", "with_mean"): False,
             ("sklearn.linear_model.Ridge#0", "alpha"): 0.1},
        ])


class TestGroupCandidates:
    def _candidate(self, template, task, iteration=0):
        return EvaluationCandidate(
            iteration=iteration, template=template,
            hyperparameters=template.default_hyperparameters(),
            task=task, n_splits=2, random_state=0,
        )

    def test_same_template_candidates_group_in_order(self):
        template = Template("grp_gnb",
                            [ENCODER, IMPUTER, "sklearn.naive_bayes.GaussianNB", DECODER])
        other = Template("grp_knn",
                         [ENCODER, IMPUTER, "sklearn.neighbors.KNeighborsClassifier", DECODER])
        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        candidates = [
            self._candidate(template, task, 0),
            self._candidate(other, task, 1),
            self._candidate(template, task, 2),
        ]
        groups = group_candidates(candidates)
        assert [len(group) for group in groups] == [2, 1]
        assert [c.iteration for c in groups[0]] == [0, 2]


class TestBatchedSearchEquivalence:
    def _templates(self):
        return [
            Template("beq_logistic",
                     [ENCODER, IMPUTER, "sklearn.linear_model.LogisticRegression", DECODER]),
            Template("beq_knn",
                     [ENCODER, IMPUTER, "sklearn.neighbors.KNeighborsClassifier", DECODER]),
            Template("beq_gnb",
                     [ENCODER, IMPUTER, "sklearn.naive_bayes.GaussianNB", DECODER]),
        ]

    def _records(self, batch_eval, schedule, backend="serial"):
        task = synth.make_single_table_classification(n_samples=90, random_state=0)
        searcher = AutoBazaarSearch(
            templates=self._templates(), n_splits=2, random_state=0,
            schedule=schedule, n_pending=4, batch_eval=batch_eval,
            backend=backend, tuner_class=UniformTuner,
        )
        result = searcher.search(task, budget=12)
        return [(r.template_name, r.iteration, r.score, r.failed, r.error)
                for r in result.records]

    @pytest.mark.parametrize("schedule", ["barrier", "window"])
    def test_batched_matches_looped_serial(self, schedule):
        assert self._records(True, schedule) == self._records(False, schedule)

    def test_batched_matches_looped_thread_backend(self):
        assert (self._records(True, "barrier", backend="thread")
                == self._records(False, "barrier", backend="serial"))

    def test_serial_backend_submit_many_equivalence(self):
        template = self._templates()[2]
        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        candidates = [
            EvaluationCandidate(
                iteration=index, template=template,
                hyperparameters=template.default_hyperparameters(),
                task=task, n_splits=2, random_state=0,
            )
            for index in range(3)
        ]
        backend = SerialBackend()
        backend.submit_many(candidates)
        grouped = sorted((f.candidate.iteration, f.result().score)
                         for f in backend.as_completed())
        backend = SerialBackend()
        for candidate in candidates:
            backend.submit(candidate)
        looped = sorted((f.candidate.iteration, f.result().score)
                        for f in backend.as_completed())
        assert grouped == looped
