"""Tests for the AutoBazaar search engine (paper Algorithm 2)."""

import pytest

from repro.automl import AutoBazaarSearch, evaluate_pipeline, get_templates
from repro.automl.search import RandomSearch, cross_validate_template
from repro.explorer import PipelineStore
from repro.tasks import synth
from repro.tasks.task import split_task
from repro.tuning.selectors import UniformSelector
from repro.tuning.tuners import UniformTuner


@pytest.fixture(scope="module")
def tabular_task():
    return synth.make_single_table_classification(n_samples=120, random_state=0)


@pytest.fixture(scope="module")
def search_result(tabular_task):
    searcher = AutoBazaarSearch(n_splits=2, random_state=0)
    return searcher.search(tabular_task, budget=6)


class TestEvaluateAndCrossValidate:
    def test_evaluate_pipeline_returns_scores_and_pipeline(self, tabular_task):
        train, test = split_task(tabular_task, test_size=0.3, random_state=0)
        template = get_templates("single_table", "classification")[0]
        normalized, raw, pipeline = evaluate_pipeline(
            template, template.default_hyperparameters(), train, test
        )
        assert 0.0 <= raw <= 1.0
        assert normalized == raw  # f1 is higher-is-better
        assert pipeline.fitted

    def test_cross_validate_template_mean_score(self, tabular_task):
        template = get_templates("single_table", "classification")[0]
        score, raw = cross_validate_template(
            template, template.default_hyperparameters(), tabular_task,
            n_splits=2, random_state=0,
        )
        assert 0.0 <= raw <= 1.0


class TestAutoBazaarSearch:
    def test_budget_respected(self, search_result):
        assert search_result.n_evaluated == 6

    def test_defaults_evaluated_first(self, search_result):
        n_templates = len(get_templates("single_table", "classification"))
        defaults = [r for r in search_result.records if r.is_default]
        assert len(defaults) == n_templates
        assert all(r.iteration < n_templates for r in defaults)

    def test_best_score_is_max_of_records(self, search_result):
        scores = [r.score for r in search_result.records if not r.failed]
        assert search_result.best_score == pytest.approx(max(scores))

    def test_best_pipeline_fitted_and_scored_on_test(self, search_result):
        assert search_result.best_pipeline is not None
        assert search_result.best_pipeline.fitted
        assert 0.0 <= search_result.test_score <= 1.0

    def test_result_statistics(self, search_result):
        assert search_result.n_failed == 0
        assert search_result.pipelines_per_second > 0
        assert isinstance(search_result.improvement_sigmas(), float)
        assert search_result.default_score is not None

    def test_store_receives_every_record(self, tabular_task):
        store = PipelineStore()
        searcher = AutoBazaarSearch(n_splits=2, random_state=0, store=store)
        result = searcher.search(tabular_task, budget=5)
        assert len(store) == result.n_evaluated

    def test_explicit_templates_override_catalog(self, tabular_task):
        templates = get_templates("single_table", "classification", variant="rf")
        searcher = AutoBazaarSearch(templates=templates, n_splits=2, random_state=0)
        result = searcher.search(tabular_task, budget=4)
        assert set(r.template_name for r in result.records) <= {t.name for t in templates}

    def test_alternative_selector_and_tuner(self, tabular_task):
        searcher = AutoBazaarSearch(
            tuner_class=UniformTuner, selector_class=UniformSelector,
            n_splits=2, random_state=0,
        )
        result = searcher.search(tabular_task, budget=5)
        assert result.best_score is not None

    def test_random_search_subclass(self, tabular_task):
        result = RandomSearch(n_splits=2, random_state=0).search(tabular_task, budget=4)
        assert result.best_score is not None

    def test_explicit_test_task(self, tabular_task):
        train, test = split_task(tabular_task, test_size=0.3, random_state=1)
        result = AutoBazaarSearch(n_splits=2, random_state=0).search(
            train, budget=4, test_task=test
        )
        assert result.test_score is not None

    def test_failed_pipelines_recorded_not_fatal(self, tabular_task):
        from repro.core.template import Template

        # PCA with an out-of-range fixed component count fails on every fold
        broken = Template(
            "broken",
            ["sklearn.decomposition.PCA", "xgboost.XGBClassifier"],
            init_params={"sklearn.decomposition.PCA": {"n_components": 0}},
        )
        working = get_templates("single_table", "classification", variant="rf")
        searcher = AutoBazaarSearch(templates=[broken] + working, n_splits=2, random_state=0)
        result = searcher.search(tabular_task, budget=4)
        assert result.n_failed >= 1
        assert result.best_score is not None
        failed = [r for r in result.records if r.failed]
        assert all(r.error for r in failed)

    def test_no_templates_raises(self, tabular_task):
        searcher = AutoBazaarSearch(templates=[], n_splits=2)
        with pytest.raises(ValueError):
            searcher.search(tabular_task, budget=2)


class TestSearchAcrossTaskTypes:
    @pytest.mark.parametrize("generator", [
        synth.make_single_table_regression,
        synth.make_text_classification,
        synth.make_link_prediction,
        synth.make_community_detection,
    ])
    def test_search_completes_for_other_modalities(self, generator):
        task = generator(random_state=1)
        result = AutoBazaarSearch(n_splits=2, random_state=0).search(task, budget=3)
        assert result.n_evaluated == 3
        assert result.best_score is not None


class TestEvaluationRecord:
    def test_to_dict_fields(self, search_result):
        document = search_result.records[0].to_dict()
        for field in ("task_name", "template_name", "score", "iteration", "elapsed",
                      "hyperparameters", "is_default", "error"):
            assert field in document
