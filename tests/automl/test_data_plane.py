"""Tests for the zero-copy shared-memory data plane (repro.automl.shm)."""

import glob
import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.automl import AutoBazaarSearch, shm
from repro.automl.backends import ProcessBackend, get_backend
from repro.core.template import Template
from repro.tasks import synth
from repro.tasks.task import MLTask
from repro.tuning.tuners import UniformTuner

pytestmark = pytest.mark.skipif(not shm.shm_available(),
                                reason="shared memory unavailable on this platform")

ENCODER = "mlprimitives.custom.feature_extraction.CategoricalEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
IMPUTER = "sklearn.impute.SimpleImputer"


def own_segments():
    """Shared-memory segments published by this process and still linked."""
    pattern = os.path.join("/dev/shm", "{}-{}-*".format(shm.SEGMENT_PREFIX, os.getpid()))
    return glob.glob(pattern)


def make_task(n_samples=80):
    return synth.make_single_table_classification(n_samples=n_samples, random_state=0)


class TestPublishAttach:
    def test_roundtrip_preserves_data_and_metadata(self):
        task = make_task()
        segment = shm.publish_task(task)
        try:
            rebuilt = shm.attach_task(segment.handle)
            assert rebuilt.name == task.name
            assert rebuilt.problem_type == task.problem_type
            assert rebuilt.metric == task.metric
            assert set(rebuilt.context) == set(task.context)
            for key, value in task.context.items():
                np.testing.assert_array_equal(rebuilt.context[key], value)
        finally:
            segment.release()

    def test_attached_views_are_read_only_and_zero_copy(self):
        task = make_task()
        segment = shm.publish_task(task)
        try:
            rebuilt = shm.attach_task(segment.handle)
            view = rebuilt.context["X"]
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view[0, 0] = 1.0
            # the view maps the segment's buffer instead of owning a copy
            assert not view.flags.owndata
        finally:
            segment.release()

    def test_fold_subsets_of_attached_task_are_writable(self):
        task = make_task()
        segment = shm.publish_task(task)
        try:
            rebuilt = shm.attach_task(segment.handle)
            fold = rebuilt.subset(np.arange(20))
            fold.context["X"][0, 0] = 123.0  # fancy indexing copied the rows
            assert fold.context["X"][0, 0] == 123.0
        finally:
            segment.release()

    def test_handle_is_picklable_and_small(self):
        task = make_task(n_samples=200)
        segment = shm.publish_task(task)
        try:
            blob = pickle.dumps(segment.handle)
            # the handle ships names and a manifest, not the dataset
            assert len(blob) < task.data_nbytes / 10
            restored = pickle.loads(blob)
            rebuilt = restored.load()
            np.testing.assert_array_equal(rebuilt.context["y"], task.context["y"])
        finally:
            segment.release()

    def test_release_unlinks_segment(self):
        task = make_task()
        segment = shm.publish_task(task)
        path = os.path.join("/dev/shm", segment.name)
        assert os.path.exists(path)
        segment.release()
        assert not os.path.exists(path)
        with pytest.raises(FileNotFoundError):
            shm.attach_task(segment.handle)

    def test_refcount_defers_unlink_to_last_release(self):
        segment = shm.publish_task(make_task())
        path = os.path.join("/dev/shm", segment.name)
        segment.acquire()
        segment.release()
        assert os.path.exists(path)  # the publication reference is still held
        segment.release()
        assert not os.path.exists(path)

    def test_object_dtype_task_is_not_shareable(self):
        texts = np.array(["alpha", "beta", None], dtype=object)
        task = MLTask("texts", "text", "classification",
                      {"X": texts, "y": np.array([0, 1, 0])})
        assert not shm.task_is_shareable(task)
        with pytest.raises(shm.TaskNotShareableError):
            shm.publish_task(task)


class TestBackendDataPlane:
    def test_data_plane_validation(self):
        with pytest.raises(ValueError, match="data_plane"):
            ProcessBackend(workers=1, data_plane="carrier-pigeon")
        with pytest.raises(ValueError):
            get_backend("serial", data_plane="shm")

    def test_shm_plane_publishes_instead_of_pickling(self):
        backend = ProcessBackend(workers=1, task_cache_size=2, data_plane="shm")
        try:
            task = make_task()
            ref = backend._task_ref(task)
            assert isinstance(ref, shm.SharedTaskHandle)
            assert backend.plane_counts == {"shm": 1, "pickle": 0}
            assert backend._task_ref(task) is ref  # registry hit, no re-publish
            assert backend.plane_counts["shm"] == 1
        finally:
            backend.shutdown()

    def test_pickle_plane_and_fallback_for_object_tasks(self):
        backend = ProcessBackend(workers=1, task_cache_size=2, data_plane="shm")
        try:
            texts = np.array(["alpha", "beta", "gamma", "delta"], dtype=object)
            task = MLTask("texts", "text", "classification",
                          {"X": texts, "y": np.array([0, 1, 0, 1])})
            ref = backend._task_ref(task)
            assert not isinstance(ref, shm.SharedTaskHandle)
            assert backend.plane_counts == {"shm": 0, "pickle": 1}
        finally:
            backend.shutdown()

    def test_shutdown_unlinks_published_segments(self):
        backend = ProcessBackend(workers=1, task_cache_size=2, data_plane="shm")
        task = make_task()
        handle = backend._task_ref(task)
        path = os.path.join("/dev/shm", handle.segment)
        assert os.path.exists(path)
        backend.shutdown()
        assert not os.path.exists(path)

    def test_lru_eviction_unlinks_oldest_segment(self):
        backend = ProcessBackend(workers=1, task_cache_size=1, data_plane="shm")
        try:
            first = backend._task_ref(make_task(n_samples=60))
            second = backend._task_ref(make_task(n_samples=70))
            assert not os.path.exists(os.path.join("/dev/shm", first.segment))
            assert os.path.exists(os.path.join("/dev/shm", second.segment))
        finally:
            backend.shutdown()


class TestSearchLifecycle:
    def _templates(self):
        return [Template("plane_gnb",
                         [ENCODER, IMPUTER, "sklearn.naive_bayes.GaussianNB", DECODER])]

    def _records(self, backend, data_plane=None):
        searcher = AutoBazaarSearch(
            templates=self._templates(), n_splits=2, random_state=0,
            backend=backend, workers=2, tuner_class=UniformTuner,
            data_plane=data_plane,
        )
        result = searcher.search(make_task(), budget=4)
        return [(r.template_name, r.iteration, r.score, r.failed, r.error)
                for r in result.records]

    def test_search_owned_backend_unlinks_segments_on_completion(self):
        before = set(own_segments())
        self._records("process", data_plane="shm")
        leaked = set(own_segments()) - before
        assert leaked == set()

    def test_data_planes_and_serial_agree_record_for_record(self):
        serial = self._records("serial")
        assert self._records("process", data_plane="shm") == serial
        assert self._records("process", data_plane="pickle") == serial


class TestCrashCleanup:
    def test_sweep_spares_segments_of_live_publishers(self, tmp_path):
        segment = shm.publish_task(make_task())
        try:
            removed = shm.sweep_stale_segments()
            assert segment.name not in removed
            assert os.path.exists(os.path.join("/dev/shm", segment.name))
        finally:
            segment.release()

    def test_sweep_reclaims_segments_of_sigkilled_publisher(self):
        script = (
            "import sys\n"
            "sys.path.insert(0, {!r})\n"
            "import numpy as np\n"
            "from repro.automl import shm\n"
            "from repro.tasks.task import MLTask\n"
            "task = MLTask('crash', 'single_table', 'classification',\n"
            "              {{'X': np.ones((30, 4)), 'y': np.arange(30) % 2}})\n"
            "segment = shm.publish_task(task)\n"
            "print(segment.name, flush=True)\n"
            "import time\n"
            "time.sleep(60)\n"
        ).format(os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src"))
        child = subprocess.Popen([sys.executable, "-c", script],
                                 stdout=subprocess.PIPE, text=True)
        try:
            name = child.stdout.readline().strip()
            assert name.startswith(shm.SEGMENT_PREFIX)
            path = os.path.join("/dev/shm", name)
            assert os.path.exists(path)
            child.kill()  # SIGKILL: no atexit hook runs in the child
            child.wait(timeout=30)
            time.sleep(0.2)
            assert os.path.exists(path)  # the crash leaked the segment
            removed = shm.sweep_stale_segments()
            assert name in removed
            assert not os.path.exists(path)
        finally:
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
                child.wait(timeout=30)
