"""Chaos suite for the fault-tolerant execution layer.

The supervised pool's contract is *fault masking with determinism*: any
single fault drawn from :data:`repro.automl.faultinject.FAULT_KINDS`
(worker kill, fold hang, slow fold, shm unlink) must yield the exact
record stream of a fault-free run — folds are pure, so a retried fold
reproduces its payload bit for bit.  The suite pins that contract on the
solo process path and on the 4-tenant fleet path (with a *real* SIGKILL,
not an injected one), plus the satellite guarantees: retries invisible
to the selector, orphaned cache temp files swept at startup, and the
four supervision telemetry events.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.automl import AutoBazaarSearch, FaultPlan, FleetCoordinator
from repro.automl.prefix_cache import (
    FittedPrefixCache,
    _tmp_prefix,
    sweep_orphan_cache_tmp,
)
from repro.core.template import Template
from repro.tasks import synth
from repro.telemetry.replayer import load_events

ENCODER = "mlprimitives.custom.preprocessing.ClassEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
IMPUTER = "sklearn.impute.SimpleImputer"
SCALER = "sklearn.preprocessing.StandardScaler"

ZERO_STATS = {
    "workers_died": 0,
    "folds_retried": 0,
    "folds_timed_out": 0,
    "pools_rebuilt": 0,
    "folds_quarantined": 0,
}


def seeded_templates():
    return [
        Template(
            "ft_logreg",
            [ENCODER, IMPUTER, SCALER, "sklearn.linear_model.LogisticRegression", DECODER],
            init_params={"sklearn.linear_model.LogisticRegression": {"random_state": 0}},
        ),
        Template(
            "ft_rf",
            [ENCODER, IMPUTER, SCALER, "sklearn.ensemble.RandomForestClassifier", DECODER],
            init_params={"sklearn.ensemble.RandomForestClassifier": {"random_state": 0}},
        ),
    ]


def record_documents(result):
    documents = [record.to_dict() for record in result.records]
    for document in documents:
        document.pop("elapsed")  # the only legitimately timing-dependent field
    return documents


def make_task(index=0):
    return synth.make_single_table_classification(
        name="fault-task-{}".format(index), n_samples=80, random_state=index,
    )


def run_search(task, backend="serial", budget=4, **kwargs):
    searcher = AutoBazaarSearch(
        templates=seeded_templates(), n_splits=2, random_state=0,
        backend=backend, n_pending=2, **kwargs,
    )
    return searcher.search(task, budget=budget)


def supervised_search(task, fold_timeout=120.0, max_fold_retries=1, **kwargs):
    return run_search(
        task, backend="process", workers=2,
        fold_timeout=fold_timeout, max_fold_retries=max_fold_retries, **kwargs,
    )


@pytest.fixture(scope="module")
def task():
    return make_task()


@pytest.fixture(scope="module")
def baseline(task):
    result = run_search(task, backend="serial")
    assert result.supervisor_stats is None  # serial runs carry no supervisor
    return record_documents(result)


class TestFaultFreeBaselines:
    def test_thread_backend_matches_serial(self, task, baseline):
        result = run_search(task, backend="thread", workers=2)
        assert record_documents(result) == baseline
        assert result.supervisor_stats is None

    def test_unsupervised_process_backend_matches_serial(self, task, baseline):
        result = run_search(task, backend="process", workers=2)
        assert record_documents(result) == baseline
        assert result.supervisor_stats is None  # supervision is opt-in

    def test_supervised_process_backend_matches_serial(self, task, baseline):
        result = supervised_search(task)
        assert record_documents(result) == baseline
        # a fault-free supervised run never retries, kills, or rebuilds
        assert result.supervisor_stats == ZERO_STATS


class TestSingleFaultPlans:
    """Any single-fault plan must be fully masked by the supervisor."""

    def test_worker_kill_is_masked(self, task, baseline):
        plan = FaultPlan.single("worker_kill", at_fold=2)
        with plan.activate():
            result = supervised_search(task)
        assert record_documents(result) == baseline
        stats = result.supervisor_stats
        assert stats["workers_died"] == 1
        assert stats["folds_retried"] >= 1
        assert stats["pools_rebuilt"] == 1
        assert stats["folds_quarantined"] == 0

    def test_shm_unlink_is_repaired_and_masked(self, task, baseline):
        plan = FaultPlan.single("shm_unlink", at_fold=2)
        with plan.activate():
            result = supervised_search(task)
        assert record_documents(result) == baseline
        stats = result.supervisor_stats
        # the segment is re-published in place: a retry, never a death
        assert stats["workers_died"] == 0
        assert stats["folds_retried"] >= 1
        assert stats["folds_quarantined"] == 0

    def test_slow_fold_is_absorbed(self, task, baseline):
        plan = FaultPlan.single("slow_fold", at_fold=2, seconds=0.3)
        with plan.activate():
            result = supervised_search(task)
        assert record_documents(result) == baseline
        assert result.supervisor_stats == ZERO_STATS  # under the deadline

    def test_fold_hang_is_killed_at_the_deadline_and_masked(
            self, task, baseline, tmp_path):
        events_dir = str(tmp_path / "events")
        plan = FaultPlan.single("fold_hang", at_fold=2)
        with plan.activate():
            result = supervised_search(
                task, fold_timeout=3.0, max_fold_retries=2,
                telemetry=events_dir,
            )
        assert record_documents(result) == baseline
        stats = result.supervisor_stats
        assert stats["folds_timed_out"] == 1
        assert stats["workers_died"] == 1  # the hung worker is SIGKILLed
        assert stats["folds_retried"] >= 1
        assert stats["folds_quarantined"] == 0
        event_types = {event.get("event") for event in load_events(events_dir)}
        assert "fold_timed_out" in event_types

    def test_seeded_plans_are_deterministic(self, tmp_path):
        kwargs = dict(seed=7, total_folds=8, kinds=("slow_fold", "worker_kill"),
                      n_faults=2)
        first = FaultPlan.seeded(plan_dir=str(tmp_path / "a"), **kwargs)
        second = FaultPlan.seeded(plan_dir=str(tmp_path / "b"), **kwargs)
        assert first.faults == second.faults
        assert FaultPlan.from_json(first.to_json()).faults == first.faults


class TestSupervisionTelemetry:
    def test_worker_kill_emits_supervision_events(self, task, baseline, tmp_path):
        events_dir = str(tmp_path / "events")
        plan = FaultPlan.single("worker_kill", at_fold=2)
        with plan.activate():
            result = supervised_search(task, telemetry=events_dir)
        assert record_documents(result) == baseline
        event_types = {event.get("event") for event in load_events(events_dir)}
        assert {"worker_died", "fold_retried", "pool_rebuilt"} <= event_types


class TestSelectorAccounting:
    """Satellite: supervisor retries never reach the selector's quarantine.

    The record streams in :class:`TestSingleFaultPlans` being bit-identical
    already proves the selector saw identical outcomes; these tests pin the
    mechanism explicitly.
    """

    def test_retried_crash_records_no_failure(self, task, baseline):
        plan = FaultPlan.single("worker_kill", at_fold=2)
        with plan.activate():
            result = supervised_search(task)
        documents = record_documents(result)
        baseline_failures = [doc for doc in baseline if doc["error"] is not None]
        failures = [doc for doc in documents if doc["error"] is not None]
        # the killed-and-retried fold produced no extra failure record, so
        # the selector's two-failure crash quarantine was never charged
        assert failures == baseline_failures
        assert result.supervisor_stats["folds_retried"] >= 1
        assert result.supervisor_stats["folds_quarantined"] == 0

    def test_quarantined_fold_is_one_recorded_failure(self, task):
        # retries exhausted immediately: the single kill becomes the fold's
        # final outcome and flows through the ordinary record_failure path
        plan = FaultPlan.single("worker_kill", at_fold=2)
        with plan.activate():
            result = supervised_search(task, max_fold_retries=0)
        crash_records = [
            record for record in result.records
            if record.error is not None and "worker process died" in record.error
        ]
        assert len(crash_records) == 1
        assert result.supervisor_stats["folds_quarantined"] == 1
        assert result.supervisor_stats["folds_retried"] == 0


class TestFleetRealKill:
    """Satellite: a real SIGKILL mid-fold on the 4-tenant fleet path."""

    def test_four_tenants_survive_a_worker_sigkill(self):
        tasks = [make_task(index) for index in range(4)]
        solo = [record_documents(run_search(task, budget=3)) for task in tasks]

        with FleetCoordinator(backend="process", workers=2,
                              fold_timeout=120.0, max_fold_retries=2) as fleet:
            handles = [
                fleet.register(name="tenant-{}".format(index)) for index in range(4)
            ]
            results = [None] * 4
            failures = []

            def run(index):
                try:
                    results[index] = run_search(tasks[index], backend=handles[index],
                                                budget=3)
                except BaseException as failure:  # noqa: BLE001 - re-raised below
                    failures.append(failure)

            threads = [
                threading.Thread(target=run, args=(index,)) for index in range(4)
            ]
            for thread in threads:
                thread.start()

            # SIGKILL a worker that provably has a fold in flight
            executor = fleet._pool._executor
            victim = None
            deadline = time.monotonic() + 30
            while victim is None and time.monotonic() < deadline:
                for worker in list(executor._workers.values()):
                    if worker.job is not None:
                        victim = worker.process.pid
                        break
                else:
                    time.sleep(0.01)
            assert victim is not None, "no fold ever went in flight"
            os.kill(victim, signal.SIGKILL)

            for thread in threads:
                thread.join()
            # the supervisor notices the death via the process sentinel;
            # give its thread a moment to file the respawn
            deadline = time.monotonic() + 10
            while (fleet.supervisor_stats["workers_died"] < 1
                    and time.monotonic() < deadline):
                time.sleep(0.01)
            stats = fleet.supervisor_stats
            assert stats["workers_died"] >= 1
            assert stats["pools_rebuilt"] >= 1
            assert stats["folds_quarantined"] == 0

        # every tenant's stream is bit-identical to its solo run: the kill
        # cost a rebuild pause, never a record
        for index, result in enumerate(results):
            assert record_documents(result) == solo[index]


class TestOrphanTmpSweep:
    """Satellite: killed writers' ``*.tmp`` files are reclaimed at startup."""

    def _dead_pid(self):
        process = subprocess.Popen([sys.executable, "-c", "pass"])
        process.wait()
        return process.pid

    def test_sweep_removes_dead_and_unparsable_only(self, tmp_path):
        cache_dir = str(tmp_path)
        live = os.path.join(cache_dir, "{}live.tmp".format(_tmp_prefix()))
        dead = os.path.join(cache_dir, ".prefix-{}-dead.tmp".format(self._dead_pid()))
        legacy = os.path.join(cache_dir, ".prefix-legacy.tmp")
        payload = os.path.join(cache_dir, "entry.pkl")
        for path in (live, dead, legacy, payload):
            with open(path, "w"):
                pass

        assert sweep_orphan_cache_tmp(cache_dir) == 2
        assert os.path.exists(live)  # this process is alive: still writing
        assert os.path.exists(payload)  # committed entries are never touched
        assert not os.path.exists(dead)
        assert not os.path.exists(legacy)  # pre-pid-convention names go too

    def test_cache_startup_sweeps(self, tmp_path):
        cache_dir = str(tmp_path)
        orphan = os.path.join(cache_dir, ".prefix-{}-x.tmp".format(self._dead_pid()))
        with open(orphan, "w"):
            pass
        FittedPrefixCache(cache_dir=cache_dir)
        assert not os.path.exists(orphan)

    def test_missing_directory_is_harmless(self, tmp_path):
        assert sweep_orphan_cache_tmp(str(tmp_path / "absent")) == 0
