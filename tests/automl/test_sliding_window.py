"""Tests for the sliding-window scheduler and the worker-resident task cache.

The scheduler contract has two halves:

* **liveness** — while one candidate stalls, the window keeps proposing
  replacements for every *other* completed slot, so ``n_pending``
  evaluations stay in flight (the barrier loop would idle instead), and
* **determinism** — proposal ``k`` only consumes the reported results of
  candidates ``0 .. k - n_pending``, so for a fixed ``n_pending`` the
  record stream is identical across serial, thread and process backends.
"""

import pickle
import threading
import time

import pytest

from repro.automl import AutoBazaarSearch, EvaluationCandidate, ProcessBackend
from repro.automl import backends as backends_module
from repro.automl.backends import TaskPayload, evaluate_fold_indices
from repro.core.template import Template
from repro.tasks import synth
from repro.tasks.task import task_cv_indices, task_cv_splits

SLEEPY = "mlprimitives.custom.synthetic.TimedDummyClassifier"


def timed_template(name, fit_seconds):
    return Template(name, [SLEEPY], init_params={SLEEPY: {"fit_seconds": fit_seconds}})


def run_schedule(schedule, backend, workers=None, n_pending=3, budget=8):
    """Record stream of a skew-heavy search (elapsed stripped)."""
    templates = [timed_template("slow_tpl", 0.08), timed_template("fast_tpl", 0.0)]
    task = synth.make_single_table_classification(n_samples=60, random_state=0)
    searcher = AutoBazaarSearch(
        templates=templates, n_splits=2, random_state=0, backend=backend,
        workers=workers, n_pending=n_pending, schedule=schedule,
    )
    result = searcher.search(task, budget=budget)
    documents = [record.to_dict() for record in result.records]
    for document in documents:
        document.pop("elapsed")
    return documents


class StallHarness:
    """Instrumented evaluation: one template blocks until released.

    Wraps ``search.evaluate_pipeline`` so every fold logs when its
    template starts and finishes; folds of the ``stall`` template block
    on an event.  ``release_on`` names the template whose *start* proves
    the scheduler kept going — seeing it releases the stall.
    """

    def __init__(self, release_on=None):
        self.log = []  # ("start" | "end", template_name) per fold, observed order
        self.event = threading.Event()
        self.release_on = release_on
        self._lock = threading.Lock()

    def install(self, monkeypatch):
        from repro.automl import search as search_module

        real = search_module.evaluate_pipeline

        def instrumented(template, hyperparameters, train_task, val_task):
            with self._lock:
                self.log.append(("start", template.name))
            if template.name == self.release_on:
                self.event.set()
            if template.name == "stall":
                if not self.event.wait(timeout=15):
                    raise RuntimeError("stalled fold was never released")
            result = real(template, hyperparameters, train_task, val_task)
            with self._lock:
                self.log.append(("end", template.name))
            return result

        monkeypatch.setattr(search_module, "evaluate_pipeline", instrumented)

    def count(self, kind, name):
        with self._lock:
            return self.log.count((kind, name))

    def positions(self, kind, name):
        with self._lock:
            return [i for i, entry in enumerate(self.log) if entry == (kind, name)]


def stall_search(schedule, harness, monkeypatch, budget=5, n_pending=3):
    """Five single-evaluation templates; iteration == template position."""
    harness.install(monkeypatch)
    templates = [
        timed_template("light0", 0.0),
        timed_template("stall", 0.0),
        timed_template("light1", 0.0),
        timed_template("light2", 0.0),
        timed_template("light3", 0.0),
    ]
    task = synth.make_single_table_classification(n_samples=60, random_state=0)
    searcher = AutoBazaarSearch(
        templates=templates, n_splits=2, random_state=0, backend="thread",
        workers=6, n_pending=n_pending, schedule=schedule,
    )
    return searcher.search(task, budget=budget)


class TestStragglerLiveness:
    def test_window_keeps_n_pending_in_flight_past_a_straggler(self, monkeypatch):
        # the window fills with iterations 0..2; the stall at iteration 1
        # blocks while light0/light1 complete.  Reporting record 0 frees a
        # slot, so light2 (iteration 3) must START while the stall is
        # still running — that start is what releases the stall, so mere
        # completion of this search proves the window kept 3 evaluations
        # (stall, light1's replacement chain, light2) in flight.
        harness = StallHarness(release_on="light2")
        result = stall_search("window", harness, monkeypatch)
        assert result.n_evaluated == 5
        assert result.n_failed == 0
        assert [r.iteration for r in result.records] == [0, 1, 2, 3, 4]
        # determinism bound: light3 (iteration 4) needs record 1 reported,
        # so no fold of it may start before every stall fold has finished
        assert max(harness.positions("end", "stall")) < min(
            harness.positions("start", "light3")
        )

    def test_barrier_idles_behind_the_straggler(self, monkeypatch):
        # contrast case: with the round barrier, light2 (round 2) may not
        # start while the stall (round 1) is still draining
        harness = StallHarness(release_on=None)
        done = {}

        def run():
            done["result"] = stall_search("barrier", harness, monkeypatch)

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.time() + 5
        while harness.count("start", "light1") < 2 and time.time() < deadline:
            time.sleep(0.01)
        time.sleep(0.2)  # give a (buggy) scheduler time to over-propose
        assert harness.count("start", "light2") == 0
        harness.event.set()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert done["result"].n_failed == 0


def run_scoring_workload(backend, workers=None):
    """Record stream of templates with *distinct* score distributions.

    The timed-dummy templates above always score identically, which would
    mask divergent tuner/selector state; real seeded estimators with
    different scores make any report/propose interleave mismatch between
    backends visible in the records (regression for the reorder-buffer
    burst bug: a batch of out-of-order completions must not advance the
    reported prefix by more than one report per proposal).
    """
    encoder = "mlprimitives.custom.preprocessing.ClassEncoder"
    decoder = "mlprimitives.custom.preprocessing.ClassDecoder"
    imputer = "sklearn.impute.SimpleImputer"
    templates = [
        Template(
            "eq_rf", [encoder, imputer, "sklearn.ensemble.RandomForestClassifier", decoder],
            init_params={"sklearn.ensemble.RandomForestClassifier": {"random_state": 0}},
        ),
        Template(
            "eq_logistic",
            [encoder, imputer, "sklearn.linear_model.LogisticRegression", decoder],
        ),
    ]
    task = synth.make_single_table_classification(n_samples=90, random_state=0)
    searcher = AutoBazaarSearch(
        templates=templates, n_splits=2, random_state=0, backend=backend,
        workers=workers, n_pending=4,
    )
    result = searcher.search(task, budget=14)
    documents = [record.to_dict() for record in result.records]
    for document in documents:
        document.pop("elapsed")
    return documents


class TestSlidingWindowEquivalence:
    def test_serial_thread_process_identical_records(self):
        serial = run_schedule("window", "serial")
        thread = run_schedule("window", "thread", workers=3)
        process = run_schedule("window", "process", workers=3)
        assert serial == thread
        assert serial == process

    def test_distinct_score_templates_identical_records(self):
        serial = run_scoring_workload("serial")
        thread = run_scoring_workload("thread", workers=4)
        process = run_scoring_workload("process", workers=4)
        assert serial == thread
        assert serial == process

    def test_barrier_schedule_also_equivalent_across_backends(self):
        serial = run_schedule("barrier", "serial")
        process = run_schedule("barrier", "process", workers=3)
        assert serial == process

    def test_records_reported_in_proposal_order(self):
        documents = run_schedule("window", "process", workers=3)
        assert [d["iteration"] for d in documents] == list(range(len(documents)))

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            AutoBazaarSearch(schedule="round-robin")


class TestWorkerResidentCache:
    def _task(self):
        return synth.make_single_table_classification(n_samples=60, random_state=0)

    def test_cached_and_uncached_process_backends_agree(self):
        cached = run_schedule("window", ProcessBackend(workers=2, task_cache_size=4))
        uncached = run_schedule("window", ProcessBackend(workers=2, task_cache_size=0))
        assert cached == uncached

    def test_payload_written_once_per_task_and_cleaned_up(self):
        import os

        backend = ProcessBackend(workers=2, task_cache_size=4)
        try:
            task = self._task()
            first = backend._task_payload(task)
            second = backend._task_payload(task)
            assert first is second
            assert os.path.exists(first.path)
            other = backend._task_payload(self._task())
            assert other.key != first.key
        finally:
            backend.shutdown()
        assert not os.path.exists(first.path)
        assert not os.path.exists(other.path)

    def test_evaluate_fold_indices_resolves_payload(self, tmp_path):
        task = self._task()
        path = tmp_path / "task.pkl"
        path.write_bytes(pickle.dumps(task))
        payload = TaskPayload("test-key", str(path))
        template = timed_template("payload_tpl", 0.0)
        train_indices, val_indices = task_cv_indices(task, n_splits=2, random_state=0)[0]
        result = evaluate_fold_indices(
            template, template.default_hyperparameters(), payload,
            train_indices, val_indices,
        )
        assert result["error"] is None
        assert 0.0 <= result["raw_score"] <= 1.0
        # second resolution must come from the worker cache, not the file
        path.unlink()
        again = evaluate_fold_indices(
            template, template.default_hyperparameters(), payload,
            train_indices, val_indices,
        )
        assert again["error"] is None

    def test_worker_cache_is_an_lru(self, tmp_path):
        backends_module._configure_worker_cache(1)
        try:
            task = self._task()
            for index in range(3):
                path = tmp_path / "task-{}.pkl".format(index)
                path.write_bytes(pickle.dumps(task))
                backends_module._resolve_task(TaskPayload("key-{}".format(index), str(path)))
                assert len(backends_module._WORKER_TASK_CACHE) == 1
            assert list(backends_module._WORKER_TASK_CACHE) == ["key-2"]
        finally:
            backends_module._configure_worker_cache(8)

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            ProcessBackend(workers=1, task_cache_size=-1)

    def test_cache_knob_rejected_where_it_cannot_apply(self):
        from repro.automl import SerialBackend, get_backend

        # explicit knob + a backend that cannot honor it must fail loudly,
        # never silently drop the configuration
        with pytest.raises(ValueError):
            get_backend("thread", workers=2, task_cache_size=4)
        with pytest.raises(ValueError):
            get_backend(SerialBackend(), task_cache_size=4)
        backend = get_backend("process", workers=1, task_cache_size=2)
        try:
            assert backend.task_cache_size == 2
        finally:
            backend.shutdown()

    def test_cv_indices_match_materialized_splits(self):
        task = self._task()
        indices = task_cv_indices(task, n_splits=3, random_state=7)
        splits = task_cv_splits(task, n_splits=3, random_state=7)
        assert len(indices) == len(splits) == 3
        for (train_indices, val_indices), (train_task, val_task) in zip(indices, splits):
            assert len(train_indices) == train_task.n_samples
            assert len(val_indices) == val_task.n_samples

    def test_submit_ships_payload_not_task(self):
        backend = ProcessBackend(workers=2, task_cache_size=4)
        try:
            task = self._task()
            template = timed_template("ship_tpl", 0.0)
            candidate = EvaluationCandidate(
                iteration=0, template=template,
                hyperparameters=template.default_hyperparameters(),
                task=task, n_splits=2, random_state=0,
            )
            backend.submit(candidate)
            (future,) = list(backend.as_completed())
            assert future.result().error is None
            # the task is parked once in the active data plane's cache
            # (shm segment by default, pickle spill on fallback)
            assert len(backend._segments) + len(backend._payloads) == 1
        finally:
            backend.shutdown()
