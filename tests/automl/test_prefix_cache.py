"""Tests for the fitted-prefix cache and fold-level early-discard pruning.

The cache contract: enabling the prefix cache never changes what a search
records — cached evaluation produces bit-identical scores and records on
every backend, because entries are content-addressed by the fold's
training data and the full configured prefix.  A corrupt or aliased disk
entry must be detected and degrade to a miss, never to wrong data.

The pruning contract: a candidate whose optimistic bound cannot reach the
task best minus the margin is discarded mid-evaluation and recorded as a
pruned failure (consuming budget, feeding the selector/tuner failure
bookkeeping), without affecting what the surviving candidates score.
"""

import glob
import multiprocessing
import os
import pickle
import queue
import shutil

import pytest

from repro.automl import AutoBazaarSearch, AutoBazaarSession
from repro.automl.backends import PruneController, _PooledCandidateFuture
from repro.automl.prefix_cache import (
    FittedPrefixCache,
    fold_data_key,
    make_prefix_cache_config,
    resolve_prefix_cache,
    task_content_digest,
)
from repro.core.template import Template
from repro.explorer import PipelineStore
from repro.tasks import synth

@pytest.fixture(autouse=True)
def _fresh_process_cache():
    """Reset the process-global cache so tests are order-independent.

    The resolved cache deliberately outlives a search (that is what makes
    the memory tier useful across candidates); for tests, that sharing
    would let one test's warm cache mask another's expected misses.
    """
    from repro.automl import prefix_cache as prefix_cache_module

    prefix_cache_module._PROCESS_CACHES.clear()
    yield
    prefix_cache_module._PROCESS_CACHES.clear()


ENCODER = "mlprimitives.custom.preprocessing.ClassEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
IMPUTER = "sklearn.impute.SimpleImputer"
SCALER = "sklearn.preprocessing.StandardScaler"
RF = "sklearn.ensemble.RandomForestClassifier"
XGB = "xgboost.XGBClassifier"
MAJORITY = "mlprimitives.custom.synthetic.TimedDummyClassifier"


def seeded_templates():
    return [
        Template(
            "cache_eq_xgb", [ENCODER, IMPUTER, SCALER, XGB, DECODER],
            init_params={XGB: {"random_state": 0}},
        ),
        Template(
            "cache_eq_rf", [ENCODER, IMPUTER, SCALER, RF, DECODER],
            init_params={RF: {"random_state": 0}},
        ),
    ]


def make_task():
    return synth.make_single_table_classification(n_samples=90, random_state=0)


def run_search(backend=None, workers=None, n_pending=1, budget=6, **kwargs):
    searcher = AutoBazaarSearch(
        templates=seeded_templates(), n_splits=2, random_state=0,
        backend=backend or "serial", workers=workers, n_pending=n_pending, **kwargs,
    )
    return searcher.search(make_task(), budget=budget)


def stripped_documents(result):
    documents = [record.to_dict() for record in result.records]
    for document in documents:
        document.pop("elapsed")
    return documents


class TestPrefixFingerprints:
    def _pipeline(self, hyperparameters=None):
        template = seeded_templates()[1]
        return template.build_pipeline(hyperparameters)

    def test_prefix_stable_under_estimator_changes(self):
        space = seeded_templates()[1].get_tunable_hyperparameters()
        estimator_key = next(key for key in space if key[0].startswith(RF))
        base = self._pipeline().prefix_fingerprints("data")
        tuned = self._pipeline(
            {estimator_key: space[estimator_key].default}
        ).prefix_fingerprints("data")
        # encoder/imputer/scaler prefix unchanged, estimator suffix may differ
        assert base[:3] == tuned[:3]

    def test_prefix_changes_with_prefix_hyperparameters(self):
        space = seeded_templates()[1].get_tunable_hyperparameters()
        imputer_key = next(key for key in space if key[0].startswith(IMPUTER))
        spec = space[imputer_key]
        changed_value = next(v for v in spec.values if v != spec.default)
        base = self._pipeline().prefix_fingerprints("data")
        changed = self._pipeline({imputer_key: changed_value}).prefix_fingerprints("data")
        assert base[0] == changed[0]  # encoder before the imputer: unchanged
        assert base[1] != changed[1]  # the imputer and everything after: changed
        assert base[2] != changed[2]

    def test_prefix_changes_with_data_key(self):
        pipeline = self._pipeline()
        assert pipeline.prefix_fingerprints("a") != pipeline.prefix_fingerprints("b")

    def test_fit_with_cache_requires_data_key(self):
        with pytest.raises(ValueError):
            self._pipeline().fit(prefix_cache=FittedPrefixCache(), X=[[1.0]], y=[0])

    def test_cached_refit_hits_prefix_and_matches_predictions(self):
        task = make_task()
        data_key = task_content_digest(task)
        cache = FittedPrefixCache()
        first = self._pipeline().fit(
            prefix_cache=cache, data_key=data_key, **task.pipeline_data()
        )
        assert first.prefix_cache_info["hits"] == 0
        assert first.prefix_cache_info["misses"] == 3  # encoder, imputer, scaler
        second = self._pipeline().fit(
            prefix_cache=cache, data_key=data_key, **task.pipeline_data()
        )
        assert second.prefix_cache_info["hits"] == 3
        assert second.prefix_cache_info["misses"] == 0
        X = task.context["X"]
        assert list(first.predict(X=X)) == list(second.predict(X=X))

    def test_estimator_step_is_never_cached(self):
        task = make_task()
        cache = FittedPrefixCache()
        pipeline = self._pipeline()
        pipeline.fit(prefix_cache=cache, data_key=task_content_digest(task),
                     **task.pipeline_data())
        cached_steps = pipeline.prefix_cache_info["misses"]
        assert cached_steps == pipeline._cacheable_prefix_length()
        assert cached_steps < len(pipeline.steps) - 1  # stops before the estimator


class TestFittedPrefixCache:
    def test_memory_lru_evicts_oldest(self):
        cache = FittedPrefixCache(max_entries=2)
        for name in ("a", "b", "c"):
            cache.put(name, {"instance": name, "outputs": None})
        assert cache.get("a") is None  # evicted
        assert cache.get("b")["instance"] == "b"
        assert cache.get("c")["instance"] == "c"
        stats = cache.stats.snapshot()
        assert stats["stores"] == 3 and stats["misses"] == 1 and stats["hits"] == 2

    def test_disk_round_trip_across_instances(self, tmp_path):
        directory = str(tmp_path)
        writer = FittedPrefixCache(cache_dir=directory)
        written = writer.put("abc123", {"instance": {"w": 1.5}, "outputs": {"X": [1, 2]}})
        assert written > 0
        reader = FittedPrefixCache(cache_dir=directory)  # fresh process stand-in
        artifacts = reader.get("abc123")
        assert artifacts == {"instance": {"w": 1.5}, "outputs": {"X": [1, 2]}}
        assert reader.stats.snapshot()["hits"] == 1

    def test_corrupt_disk_entry_is_a_miss_not_wrong_data(self, tmp_path):
        directory = str(tmp_path)
        writer = FittedPrefixCache(cache_dir=directory)
        writer.put("abc123", {"instance": 1, "outputs": None})
        (path,) = glob.glob(os.path.join(directory, "abc123.pkl"))
        with open(path, "wb") as stream:
            stream.write(b"\x80garbage")
        reader = FittedPrefixCache(cache_dir=directory)
        assert reader.get("abc123") is None
        assert reader.stats.snapshot()["invalid"] == 1
        assert not os.path.exists(path)  # the poisoned entry is dropped

    def test_unwritable_disk_tier_degrades_to_memory_only(self, tmp_path):
        # a full or read-only cache filesystem must never fail the
        # evaluation the cache was accelerating: put() degrades to the
        # memory tier and reports zero bytes written.  A regular file
        # blocking the directory path simulates the unwritable tier
        # (permission bits are ignored when the suite runs as root)
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        cache = FittedPrefixCache(cache_dir=str(blocker / "cache"))
        written = cache.put("abc123", {"instance": 1, "outputs": None})
        assert written == 0
        assert cache.get("abc123") == {"instance": 1, "outputs": None}

    def test_aliased_disk_entry_fails_the_fingerprint_check(self, tmp_path):
        # a valid pickle filed under the wrong name (fingerprint mismatch)
        # must be detected as poison, not served as the requested prefix
        directory = str(tmp_path)
        writer = FittedPrefixCache(cache_dir=directory)
        writer.put("honest", {"instance": "honest-artifact", "outputs": None})
        shutil.copyfile(
            os.path.join(directory, "honest.pkl"),
            os.path.join(directory, "impostor.pkl"),
        )
        reader = FittedPrefixCache(cache_dir=directory)
        assert reader.get("impostor") is None
        assert reader.stats.snapshot()["invalid"] == 1

    def test_disk_tier_sweeps_oldest_entries_past_the_cap(self, tmp_path):
        from repro.automl import prefix_cache as prefix_cache_module

        cache = FittedPrefixCache(cache_dir=str(tmp_path), max_disk_entries=10)
        now = 1_000_000_000
        for index in range(prefix_cache_module._DISK_SWEEP_INTERVAL):
            name = "entry-{:03d}".format(index)
            cache.put(name, {"instance": index, "outputs": None})
            # deterministic ages without sleeping: older index = older mtime
            os.utime(os.path.join(str(tmp_path), name + ".pkl"), (now + index, now + index))
        remaining = sorted(glob.glob(os.path.join(str(tmp_path), "*.pkl")))
        assert len(remaining) <= 10
        # the survivors are the newest entries, the oldest were swept
        assert all(int(os.path.basename(path)[6:9]) >= 10 for path in remaining)

    def test_resolve_prefix_cache_keeps_configs_side_by_side(self, tmp_path):
        config = make_prefix_cache_config("mem")
        assert resolve_prefix_cache(None) is None
        first = resolve_prefix_cache(config)
        assert resolve_prefix_cache(config) is first
        other = resolve_prefix_cache(make_prefix_cache_config("disk", str(tmp_path)))
        assert other is not first
        assert other.cache_dir == str(tmp_path)
        # concurrent searches with different configs must not evict each
        # other: the first config still resolves to the same instance
        assert resolve_prefix_cache(config) is first

    def test_config_validation(self):
        assert make_prefix_cache_config("off") is None
        assert make_prefix_cache_config(None) is None
        with pytest.raises(ValueError):
            make_prefix_cache_config("disk")  # no directory
        with pytest.raises(ValueError):
            make_prefix_cache_config("turbo")
        with pytest.raises(ValueError):
            AutoBazaarSearch(prefix_cache="turbo")


class TestDataKeys:
    def test_content_digest_is_memoized_and_content_addressed(self):
        task = make_task()
        twin = make_task()
        assert task_content_digest(task) == task_content_digest(twin)
        assert task._content_digest == task_content_digest(task)
        task.context["y"] = task.context["y"].copy()
        task.context["y"][0] = 1 - task.context["y"][0]
        del task._content_digest
        assert task_content_digest(task) != task_content_digest(twin)

    def test_fold_key_depends_on_indices(self):
        task = make_task()
        assert fold_data_key(task, [0, 1, 2]) != fold_data_key(task, [0, 1, 3])
        assert fold_data_key(task, [0, 1, 2]) == fold_data_key(task, [0, 1, 2])


class TestCachedSearchEquivalence:
    """Cached and uncached evaluation produce identical records everywhere."""

    def test_serial_mem_and_disk_match_uncached(self, tmp_path):
        baseline = stripped_documents(run_search())
        assert stripped_documents(run_search(prefix_cache="mem")) == baseline
        assert stripped_documents(
            run_search(prefix_cache="disk", cache_dir=str(tmp_path))
        ) == baseline

    def test_thread_backend_cached_matches_uncached(self):
        baseline = stripped_documents(run_search("thread", workers=2, n_pending=2))
        cached = stripped_documents(
            run_search("thread", workers=2, n_pending=2, prefix_cache="mem")
        )
        assert cached == baseline

    def test_process_backend_cached_matches_uncached_and_serial(self, tmp_path):
        baseline = stripped_documents(run_search())
        cached = stripped_documents(
            run_search("process", workers=2, prefix_cache="disk", cache_dir=str(tmp_path))
        )
        assert cached == baseline

    def test_ship_every_fold_path_shares_cache_keys_with_serial(self, tmp_path):
        # a serial run populates the shared disk tier; the process backend
        # with the worker task cache disabled (ship-every-fold) must hit
        # those same entries — the fold key is derived from the parent
        # task + indices on every path, not from the shipped subset
        directory = str(tmp_path)
        warm = run_search(prefix_cache="disk", cache_dir=directory, budget=4)
        assert warm.cache_stats["misses"] > 0
        shipped = run_search(
            "process", workers=2, prefix_cache="disk", cache_dir=directory,
            budget=4, task_cache_size=0,
        )
        assert stripped_documents(shipped) == stripped_documents(warm)
        assert shipped.cache_stats["hits"] > 0
        assert shipped.cache_stats["misses"] == 0  # every prefix came from the warm tier

    def test_cache_stats_surface_in_search_results(self):
        uncached = run_search()
        assert uncached.cache_stats is None
        cached = run_search(prefix_cache="mem")
        assert cached.cache_stats["mode"] == "mem"
        assert cached.cache_stats["hits"] > 0
        assert cached.cache_stats["misses"] > 0
        assert cached.cache_stats["bytes_written"] == 0  # no disk tier

    def test_disk_stats_count_bytes_and_poisoned_store_still_correct(self, tmp_path):
        directory = str(tmp_path)
        first = run_search(prefix_cache="disk", cache_dir=directory)
        assert first.cache_stats["bytes_written"] > 0
        # poison every on-disk entry between searches: the second search
        # must fall back to misses and still produce identical records
        for path in glob.glob(os.path.join(directory, "*.pkl")):
            with open(path, "wb") as stream:
                stream.write(b"not a pickle")
        second = run_search(prefix_cache="disk", cache_dir=directory)
        assert stripped_documents(second) == stripped_documents(first)

    def test_session_threads_cache_flags(self):
        session = AutoBazaarSession(budget=4, n_splits=2, random_state=0,
                                    prefix_cache="mem")
        result = session.solve(make_task())
        assert result.cache_stats is not None
        assert result.cache_stats["mode"] == "mem"


def pruning_templates():
    """A strong template first (sets the task best), then a weak one."""
    return [
        Template(
            "prune_strong", [ENCODER, IMPUTER, SCALER, RF, DECODER],
            init_params={RF: {"random_state": 0}},
        ),
        Template("prune_weak", [MAJORITY]),  # majority class: ~0.5 accuracy
    ]


class TestPruneController:
    def test_no_pruning_without_history(self):
        controller = PruneController(0.1)
        assert controller.assess([0.1], 3) is None  # no best, no cap yet
        controller.observe_fold(0.9)
        assert controller.assess([0.1], 3) is None  # still no task best

    def test_bound_math(self):
        controller = PruneController(0.1)
        controller.update_task_best(0.9)
        controller.observe_fold(0.9)
        # bound = (0.1 + 2 * 0.9) / 3 = 0.6333 < 0.9 - 0.1 -> prune
        assert controller.assess([0.1], 3) is not None
        # bound = (0.8 + 2 * 0.9) / 3 = 0.8667 >= 0.8 -> keep going
        assert controller.assess([0.8], 3) is None
        # completed candidates are never pruned retroactively
        assert controller.assess([0.1, 0.1, 0.1], 3) is None

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            PruneController(-0.5)
        with pytest.raises(ValueError):
            PruneController(float("nan"))

    def test_pooled_future_cancels_remaining_folds_on_prune(self):
        controller = PruneController(0.1)
        controller.update_task_best(1.0)
        controller.observe_fold(1.0)

        class FakeFoldFuture:
            def __init__(self):
                self.cancelled_calls = 0

            def cancel(self):
                self.cancelled_calls += 1
                return True

        class FakeCandidate:
            pruner = controller

        completion = queue.Queue()
        future = _PooledCandidateFuture(FakeCandidate(), 3, completion)
        future._fold_futures = [FakeFoldFuture() for _ in range(3)]
        future._record(0, {"score": 0.1, "raw_score": 0.1, "error": None, "elapsed": 0.0})
        assert future._pruned_reason is not None
        assert all(fold.cancelled_calls == 1 for fold in future._fold_futures)
        # the cancelled folds file their payloads and the outcome is pruned
        for index in (1, 2):
            future._record(index, {
                "score": None, "raw_score": None,
                "error": "CancelledError: an earlier fold of this candidate failed",
                "elapsed": 0.0,
            })
        outcome = completion.get_nowait().result()
        assert outcome.pruned
        assert outcome.error.startswith("PrunedEvaluation:")
        assert outcome.score is None

    def test_final_fold_still_feeds_the_optimistic_cap(self):
        # a candidate's last-completing fold can carry the best score seen;
        # it must raise the shared per-fold cap even though no discard
        # decision is left to make for that candidate (serial parity)
        controller = PruneController(0.1)
        controller.update_task_best(0.5)

        class FakeCandidate:
            pruner = controller

        future = _PooledCandidateFuture(FakeCandidate(), 1, queue.Queue())
        future._fold_futures = [None]
        future._record(0, {"score": 0.9, "raw_score": 0.9, "error": None, "elapsed": 0.0})
        assert controller._fold_cap == 0.9


class TestPruningInSearch:
    def test_serial_search_prunes_hopeless_candidates(self):
        store = PipelineStore()
        searcher = AutoBazaarSearch(
            templates=pruning_templates(), n_splits=3, random_state=0,
            prune_margin=0.2, store=store,
        )
        result = searcher.search(make_task(), budget=4)
        assert result.n_evaluated == 4  # pruned candidates still consume budget
        assert result.n_pruned >= 1
        pruned = [record for record in result.records if record.pruned]
        for record in pruned:
            assert record.score is None
            assert record.error.startswith("PrunedEvaluation:")
        # the strong template is unaffected and still wins
        assert result.best_template == "prune_strong"
        assert result.best_score > 0.8
        # pruned records reach the store flagged as such
        assert any(document["pruned"] for document in store)

    def test_pool_search_with_pruning_completes_and_flags_records(self):
        searcher = AutoBazaarSearch(
            templates=pruning_templates(), n_splits=3, random_state=0,
            backend="thread", workers=2, n_pending=2, prune_margin=0.2,
        )
        result = searcher.search(make_task(), budget=6)
        assert result.n_evaluated == 6
        for record in result.records:
            if record.pruned:
                assert record.error.startswith("PrunedEvaluation:")
                assert record.score is None
            elif record.error is None:
                assert record.score is not None
        assert result.best_template == "prune_strong"

    def test_huge_margin_never_prunes_and_preserves_records(self):
        baseline = stripped_documents(run_search())
        unpruned = run_search(prune_margin=100.0)
        assert unpruned.n_pruned == 0
        assert stripped_documents(unpruned) == baseline

    def test_pruned_trials_spend_budget_without_quarantine(self):
        from repro.tuning.selectors import UCB1Selector

        # two real failures quarantine a scoreless arm...
        crashed = UCB1Selector(["a", "b"], random_state=0)
        crashed.record_failure("b")
        crashed.record_failure("b")
        assert crashed._selectable({"a": [0.5], "b": []}) == ["a"]
        # ...but two prunes only shrink the confidence bonus: the arm
        # trailed the leader, it did not crash, so it stays selectable
        pruned = UCB1Selector(["a", "b"], random_state=0)
        pruned.record_pruned("b")
        pruned.record_pruned("b")
        assert set(pruned._selectable({"a": [0.5], "b": []})) == {"a", "b"}
        assert pruned.pruned_count("b") == 2
        assert "b" not in pruned._unseen({"a": [0.5], "b": []})

    def test_prune_margin_with_run_dir_is_rejected(self, tmp_path):
        from repro.automl.session import run_from_directory
        from repro.tasks.io import save_task

        task_dir = str(tmp_path / "task")
        save_task(make_task(), task_dir)
        with pytest.raises(ValueError):
            run_from_directory(
                task_dir, budget=2, run_dir=str(tmp_path / "run"), prune_margin=0.1,
            )


class TestCliFlags:
    def test_parser_accepts_cache_and_prune_flags(self):
        from repro.automl.__main__ import build_parser, build_resume_parser

        arguments = build_parser().parse_args([
            "some/task", "--prefix-cache", "disk", "--cache-dir", "/tmp/cache",
            "--prune-margin", "0.05",
        ])
        assert arguments.prefix_cache == "disk"
        assert arguments.cache_dir == "/tmp/cache"
        assert arguments.prune_margin == 0.05
        defaults = build_parser().parse_args(["some/task"])
        assert defaults.prefix_cache == "off"
        assert defaults.prune_margin is None
        resume = build_resume_parser().parse_args(["run", "--prefix-cache", "mem"])
        assert resume.prefix_cache == "mem"


# -- shared disk tier under concurrent multi-coordinator writers -------------------


def _hammer_shared_cache_dir(directory, barrier, rounds, fingerprints, failures):
    """One coordinator process racing others on the same disk cache tier.

    Each round re-publishes every fingerprint (periodically unlinking the
    entry so the tmp+rename publication actually re-races instead of
    short-circuiting on the existing file) and re-reads it through a fresh
    cache instance, so every read goes to disk.  Any read must be a clean
    miss or the exact artifacts — a torn or aliased entry is a failure.
    """
    cache = FittedPrefixCache(cache_dir=directory)
    barrier.wait()  # line both writers up so the first publications collide
    for round_number in range(rounds):
        for fingerprint in fingerprints:
            expected = {"weights": fingerprint * 200, "round_invariant": True}
            if round_number % 3 == 2:
                try:
                    os.unlink(os.path.join(directory, "{}.pkl".format(fingerprint)))
                except OSError:
                    pass
            cache.put(fingerprint, expected)
            reader = FittedPrefixCache(cache_dir=directory)  # bypass the memory tier
            loaded = reader.get(fingerprint)
            if loaded is not None and loaded != expected:
                failures.put(
                    "torn or aliased artifacts for {!r} in round {}".format(
                        fingerprint, round_number
                    )
                )
                return


class TestConcurrentDiskWriters:
    def test_racing_coordinators_never_publish_a_torn_entry(self, tmp_path):
        """Two processes fitting the same prefixes must both land on valid
        entries: the atomic tmp+rename publication means a concurrent
        reader sees either no entry or a complete one, never a torn one."""
        directory = str(tmp_path / "shared-cache")
        fingerprints = ["prefix-{}".format(index) for index in range(4)]
        barrier = multiprocessing.Barrier(2)
        failures = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(
                target=_hammer_shared_cache_dir,
                args=(directory, barrier, 30, fingerprints, failures),
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert failures.empty(), failures.get()
        # the surviving entries are complete and self-identifying, and no
        # half-published temp files leaked
        for fingerprint in fingerprints:
            path = os.path.join(directory, "{}.pkl".format(fingerprint))
            if not os.path.exists(path):
                continue
            with open(path, "rb") as stream:
                payload = pickle.load(stream)
            assert payload["fingerprint"] == fingerprint
            assert payload["artifacts"]["round_invariant"] is True
        assert glob.glob(os.path.join(directory, "*.tmp")) == []
