"""Unit tests for the supervised worker pool.

The pool is executor-compatible (``submit``/``shutdown`` with real
futures), so these tests exercise it directly, below the backend layer:
result/error round-trips, crash retry and poison quarantine, fold
deadlines, retriable payloads with the fault-listener repair hook, and
shutdown semantics.
"""

import os
import signal
import time

import pytest

from repro.automl.supervisor import (
    FoldTimeoutError,
    SupervisedWorkerPool,
    WorkerCrashError,
    _payload_retriable,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _square(value):
    return value * value


def _raise(message):
    raise ValueError(message)


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _kill_once(flag_path):
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _sleep(seconds):
    time.sleep(seconds)
    return "slept"


def _retriable_once(flag_path):
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        return {"score": None, "error": "FileNotFoundError: gone", "retriable": True}
    return {"score": 1.0, "error": None}


@pytest.fixture
def pool():
    pools = []

    def build(**kwargs):
        kwargs.setdefault("max_workers", 2)
        kwargs.setdefault("retry_backoff", 0.01)
        built = SupervisedWorkerPool(**kwargs)
        pools.append(built)
        return built

    yield build
    for built in pools:
        built.shutdown(wait=True, cancel_futures=True)


class TestBasics:
    def test_results_round_trip(self, pool):
        executor = pool()
        futures = [executor.submit(_square, value) for value in range(8)]
        assert [future.result(timeout=30) for future in futures] == [
            value * value for value in range(8)
        ]

    def test_worker_exceptions_round_trip(self, pool):
        executor = pool()
        future = executor.submit(_raise, "bad hyperparameters")
        with pytest.raises(ValueError, match="bad hyperparameters"):
            future.result(timeout=30)
        # the pool survives a plain exception: no death, no respawn
        assert executor.submit(_square, 3).result(timeout=30) == 9
        assert executor.stats["workers_died"] == 0

    def test_submit_after_shutdown_is_rejected(self, pool):
        executor = pool()
        executor.shutdown(wait=True)
        with pytest.raises(RuntimeError, match="after shutdown"):
            executor.submit(_square, 1)

    def test_cancel_queued_futures_on_shutdown(self, pool):
        executor = pool(max_workers=1)
        blocker = executor.submit(_sleep, 0.5)
        while not blocker.running():  # wait for dispatch so only the rest are queued
            time.sleep(0.01)
        queued = [executor.submit(_square, value) for value in range(8)]
        executor.shutdown(wait=True, cancel_futures=True)
        assert blocker.result(timeout=5) == "slept"  # running work drains
        assert any(future.cancelled() for future in queued)
        for future in queued:
            assert future.cancelled() or future.result(timeout=1) is not None


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_fold_retried(self, pool, tmp_path):
        executor = pool(max_workers=2, max_fold_retries=1)
        future = executor.submit(_kill_once, str(tmp_path / "flag"))
        assert future.result(timeout=60) == "survived"
        executor.shutdown(wait=True)
        assert executor.stats["workers_died"] == 1
        assert executor.stats["folds_retried"] == 1
        assert executor.stats["pools_rebuilt"] == 1
        assert executor.stats["folds_quarantined"] == 0

    def test_poison_fold_is_quarantined_after_retries(self, pool):
        executor = pool(max_workers=2, max_fold_retries=1)
        future = executor.submit(_kill_self)
        with pytest.raises(WorkerCrashError, match="2 attempts"):
            future.result(timeout=60)
        executor.shutdown(wait=True)
        # "crashes the worker twice" -> recorded failure, not endless retry
        assert executor.stats["folds_quarantined"] == 1
        assert executor.stats["folds_retried"] == 1

    def test_other_folds_survive_a_worker_death(self, pool):
        executor = pool(max_workers=2, max_fold_retries=0)
        safe = [executor.submit(_sleep, 0.3) for _ in range(2)]
        doomed = executor.submit(_kill_self)
        with pytest.raises(WorkerCrashError):
            doomed.result(timeout=60)
        assert [future.result(timeout=60) for future in safe] == ["slept", "slept"]


class TestDeadlines:
    def test_hung_fold_is_killed_and_quarantined(self, pool):
        executor = pool(max_workers=1, fold_timeout=0.5, max_fold_retries=0)
        started = time.monotonic()
        future = executor.submit(_sleep, 60)
        with pytest.raises(FoldTimeoutError, match="0.5s fold deadline"):
            future.result(timeout=60)
        assert time.monotonic() - started < 30  # killed at the deadline, not at the sleep
        executor.shutdown(wait=True)
        assert executor.stats["folds_timed_out"] == 1

    def test_hung_fold_retry_can_succeed(self, pool, tmp_path):
        flag = tmp_path / "flag"

        executor = pool(max_workers=1, fold_timeout=1.0, max_fold_retries=1)
        future = executor.submit(_hang_once, str(flag))
        assert future.result(timeout=60) == "survived"
        executor.shutdown(wait=True)
        assert executor.stats["folds_timed_out"] == 1
        assert executor.stats["folds_retried"] == 1

    def test_fast_folds_never_hit_the_deadline(self, pool):
        executor = pool(max_workers=2, fold_timeout=30)
        futures = [executor.submit(_square, value) for value in range(8)]
        assert [future.result(timeout=30) for future in futures] == [
            value * value for value in range(8)
        ]
        assert executor.stats["folds_timed_out"] == 0


class TestRetriablePayloads:
    def test_payload_retriable_detection(self):
        assert _payload_retriable({"error": "x", "retriable": True})
        assert not _payload_retriable({"error": "x"})
        assert not _payload_retriable({"error": None, "retriable": True})
        assert _payload_retriable([{"error": "x", "retriable": True}, {}])
        assert not _payload_retriable([])
        assert not _payload_retriable("text")

    def test_retriable_payload_is_retried_with_repair_hook(self, pool, tmp_path):
        executor = pool(max_workers=1, max_fold_retries=1)
        repairs = []
        executor.set_fault_listener(lambda: repairs.append(1))
        future = executor.submit(_retriable_once, str(tmp_path / "flag"))
        assert future.result(timeout=60) == {"score": 1.0, "error": None}
        assert repairs == [1]
        assert executor.stats["folds_retried"] == 1

    def test_exhausted_retriable_payload_is_delivered_as_is(self, pool):
        executor = pool(max_workers=1, max_fold_retries=1)
        future = executor.submit(
            dict, score=None, error="FileNotFoundError: gone", retriable=True
        )
        payload = future.result(timeout=60)
        # delivered like any failed fold: same record the unsupervised
        # pool would produce, never an exception
        assert payload["error"] == "FileNotFoundError: gone"
        assert executor.stats["folds_retried"] == 1


def _hang_once(flag_path):
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        time.sleep(60)
    return "survived"
