"""Tests for durable, resumable checkpointed runs (kill-and-resume equivalence)."""

import glob
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.automl import (
    CheckpointError,
    ExperimentRun,
    resume_run,
)
from repro.automl.checkpoint import CHECKPOINT_NAME, MANIFEST_NAME
from repro.explorer import PersistentPipelineStore, normalize_value
from repro.tasks import synth

BUDGET = 6
SEED = 0


class _StopRun(Exception):
    """Raised by the kill hook to abort a search mid-run (in-process 'crash')."""


def _task():
    return synth.make_single_table_classification(n_samples=90, random_state=11)


def _create(run_dir, **overrides):
    options = dict(budget=BUDGET, n_splits=2, random_state=SEED)
    options.update(overrides)
    return ExperimentRun.create(run_dir, task=_task(), **options)


def _stream(records):
    return [
        (
            record.iteration,
            record.template_name,
            json.dumps(normalize_value({str(k): v for k, v in record.hyperparameters.items()}),
                       sort_keys=True),
            record.score,
            record.error,
        )
        for record in records
    ]


def _kill_after(n):
    def hook(state):
        if state["n_reported"] >= n:
            raise _StopRun()
    return hook


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Uninterrupted checkpointed run: the equivalence reference."""
    run_dir = tmp_path_factory.mktemp("baseline") / "run"
    run = _create(run_dir)
    result = run.execute()
    return run, result, _stream(result.records)


class TestExperimentRunLifecycle:
    def test_run_directory_layout(self, baseline):
        run, result, _ = baseline
        assert os.path.exists(os.path.join(run.run_dir, MANIFEST_NAME))
        assert os.path.exists(os.path.join(run.run_dir, CHECKPOINT_NAME))
        assert glob.glob(os.path.join(run.run_dir, "store", "segment-*.jsonl"))
        assert os.path.exists(os.path.join(run.run_dir, "task", "task.json"))
        assert result.n_evaluated == BUDGET
        assert len(run.store) == BUDGET

    def test_checkpoint_snapshot_contents(self, baseline):
        run, _, _ = baseline
        with open(os.path.join(run.run_dir, CHECKPOINT_NAME)) as stream:
            snapshot = json.load(stream)
        assert snapshot["n_reported"] == BUDGET
        assert snapshot["proposed"] == BUDGET
        assert snapshot["budget"] == BUDGET
        assert snapshot["elapsed"] > 0
        assert snapshot["stream_digest"]
        # per-template trial history and every RNG state are captured
        assert snapshot["templates"]
        assert all({"n_trials", "scores", "n_failed", "n_pending"} <= set(entry)
                   for entry in snapshot["templates"].values())
        assert snapshot["rng"]["selector"][0] == "MT19937"
        assert all(state[0] == "MT19937" for state in snapshot["rng"]["tuners"].values())

    def test_create_twice_rejected(self, baseline, tmp_path):
        run, _, _ = baseline
        with pytest.raises(CheckpointError):
            _create(run.run_dir)

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(CheckpointError):
            ExperimentRun.open(tmp_path / "nope")

    def test_create_requires_a_seed(self, tmp_path):
        with pytest.raises(ValueError):
            _create(tmp_path / "run", random_state=None)

    def test_unknown_tuner_fails_before_touching_disk(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(ValueError):
            _create(run_dir, tuner="banana")
        assert not os.path.exists(run_dir)


class TestKillAndResumeEquivalence:
    @pytest.mark.parametrize("kill_after", [1, 3, 5])
    def test_resumed_stream_identical_to_uninterrupted(self, baseline, tmp_path, kill_after):
        """Acceptance: kill after k reported records, resume, identical stream."""
        _, _, reference = baseline
        run_dir = tmp_path / "run"
        run = _create(run_dir)
        with pytest.raises(_StopRun):
            run.execute(on_report=_kill_after(kill_after))
        # exactly the reported prefix is durable at the kill point
        with PersistentPipelineStore(run_dir / "store") as partial:
            assert sorted(d["iteration"] for d in partial) == list(range(kill_after))

        resumed = resume_run(run_dir)
        assert _stream(resumed.result.records) == reference
        # no duplicated or lost records in the durable store
        assert sorted(d["iteration"] for d in resumed.store) == list(range(BUDGET))

    def test_resume_mid_window_with_pending(self, tmp_path):
        """Resume reconstructs mid-window state (n_pending > 1, serial backend)."""
        reference_dir = tmp_path / "reference"
        reference = _create(reference_dir, budget=8, n_pending=3).execute()
        run_dir = tmp_path / "killed"
        run = _create(run_dir, budget=8, n_pending=3)
        with pytest.raises(_StopRun):
            run.execute(on_report=_kill_after(4))
        resumed = resume_run(run_dir)
        assert _stream(resumed.result.records) == _stream(reference.records)

    def test_resume_with_exhausted_wall_clock_budget_still_replays(self, tmp_path):
        """Replay is never deadline-gated: a run resumed at/after its
        max_seconds deadline must reconstruct the records it durably holds
        (and report a best pipeline) instead of returning an empty result."""
        run_dir = tmp_path / "run"
        run = _create(run_dir, max_seconds=3600.0)
        with pytest.raises(_StopRun):
            run.execute(on_report=_kill_after(3))
        # pretend the whole wall-clock budget was spent before the kill
        checkpoint_path = os.path.join(run_dir, CHECKPOINT_NAME)
        with open(checkpoint_path) as stream:
            snapshot = json.load(stream)
        snapshot["elapsed"] = 7200.0
        with open(checkpoint_path, "w") as stream:
            json.dump(snapshot, stream)

        resumed = resume_run(run_dir)
        assert len(resumed.result.records) == 3  # replayed, no live work
        assert resumed.result.best_template is not None
        assert sorted(d["iteration"] for d in resumed.store) == list(range(3))

    def test_resume_of_finished_run_is_idempotent(self, baseline, tmp_path):
        _, _, reference = baseline
        run_dir = tmp_path / "run"
        _create(run_dir).execute()
        resumed = resume_run(run_dir)
        assert _stream(resumed.result.records) == reference
        assert sorted(d["iteration"] for d in resumed.store) == list(range(BUDGET))

    def test_double_crash_then_resume(self, baseline, tmp_path):
        """A resumed run killed again still converges to the same stream."""
        _, _, reference = baseline
        run_dir = tmp_path / "run"
        run = _create(run_dir)
        with pytest.raises(_StopRun):
            run.execute(on_report=_kill_after(2))
        with pytest.raises(_StopRun):
            ExperimentRun.open(run_dir).execute(on_report=_kill_after(4))
        resumed = resume_run(run_dir)
        assert _stream(resumed.result.records) == reference

    def test_sigkill_crash_resume_equivalence(self, baseline):
        """The real thing: the child process dies from SIGKILL mid-run."""
        script = os.path.join(os.path.dirname(__file__), "..", "..", "scripts",
                              "crash_resume_smoke.py")
        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(os.path.dirname(script), "..", "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        completed = subprocess.run(
            [sys.executable, script], env=env,
            capture_output=True, text=True, timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "crash/resume smoke: OK" in completed.stdout

    def test_sigkill_is_a_real_signal_here(self):
        # sanity for the smoke script's returncode assertion on this platform
        assert signal.SIGKILL.value == 9


class TestResumeSafetyRails:
    def _killed_run(self, tmp_path, **overrides):
        run_dir = tmp_path / "run"
        run = _create(run_dir, **overrides)
        with pytest.raises(_StopRun):
            run.execute(on_report=_kill_after(3))
        return run_dir

    def test_tampered_store_detected(self, tmp_path):
        run_dir = self._killed_run(tmp_path)
        segment = sorted(glob.glob(str(run_dir / "store" / "segment-*.jsonl")))[0]
        lines = open(segment).read().splitlines()
        document = json.loads(lines[0])
        document["score"] = 0.123456
        lines[0] = json.dumps(document, separators=(",", ":"))
        with open(segment, "w") as stream:
            stream.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            resume_run(run_dir)

    def test_swapped_task_payload_detected(self, tmp_path):
        run_dir = self._killed_run(tmp_path)
        from repro.tasks import save_task
        save_task(synth.make_single_table_classification(n_samples=90, random_state=99),
                  run_dir / "task")
        with pytest.raises(CheckpointError):
            resume_run(run_dir)

    def test_foreign_records_beyond_budget_detected(self, tmp_path):
        run_dir = self._killed_run(tmp_path)
        with PersistentPipelineStore(run_dir / "store") as store:
            for iteration in range(BUDGET + 2):
                store.add({"task_name": "alien", "template_name": "t",
                           "score": 0.1, "iteration": iteration})
        with pytest.raises(CheckpointError):
            resume_run(run_dir)


class TestHandleLifecycle:
    def test_failed_execute_releases_the_store(self, tmp_path):
        """After a crash the run directory must reopen in exclusive mode."""
        run = _create(tmp_path / "run")
        with pytest.raises(_StopRun):
            run.execute(on_report=_kill_after(2))
        with PersistentPipelineStore(tmp_path / "run" / "store") as store:
            assert store._log._exclusive  # no leaked handle from the crash

    def test_successful_run_keeps_store_open_until_closed(self, tmp_path):
        with ExperimentRun.open(_create(tmp_path / "run").run_dir) as run:
            run.execute()
            assert len(run.store) == BUDGET
        # after close() the next opener is exclusive again
        with PersistentPipelineStore(tmp_path / "run" / "store") as store:
            assert store._log._exclusive

    def test_session_close_releases_the_persistent_store(self, tmp_path):
        from repro.automl import AutoBazaarSession

        with AutoBazaarSession(budget=2, n_splits=2, random_state=0,
                               store_path=tmp_path / "store") as session:
            assert session.store._log._opened
        with PersistentPipelineStore(tmp_path / "store") as store:
            assert store._log._exclusive


class TestSingleExecutor:
    def test_concurrent_execution_of_one_run_dir_rejected(self, tmp_path):
        run = _create(tmp_path / "run")
        holder = run._acquire_run_lock()
        if holder is None:
            pytest.skip("no flock on this platform")
        try:
            with pytest.raises(CheckpointError, match="another process"):
                ExperimentRun.open(tmp_path / "run").execute()
        finally:
            os.close(holder)
        # once the lock is released, execution proceeds normally
        result = ExperimentRun.open(tmp_path / "run").execute()
        assert result.n_evaluated == BUDGET


class TestCreateCrashRecovery:
    def test_recreate_after_crashed_create_does_not_duplicate_warm_history(self, tmp_path):
        shared = PersistentPipelineStore(tmp_path / "shared")
        for index in range(3):
            shared.add({"task_name": "prior", "template_name": "t",
                        "score": 0.1 * index})
        shared.close()

        run_dir = tmp_path / "run"
        # simulate a create() that died after freezing the warm store but
        # before committing the manifest
        frozen = PersistentPipelineStore(run_dir / "warm")
        for document in PersistentPipelineStore(tmp_path / "shared"):
            frozen.add(document)
        frozen.close()
        assert not os.path.exists(run_dir / "manifest.json")

        run = ExperimentRun.create(
            run_dir, task=_task(), budget=BUDGET, n_splits=2, random_state=SEED,
            warm_start_source=str(tmp_path / "shared"),
        )
        with PersistentPipelineStore(run_dir / "warm") as warm:
            assert len(warm) == 3  # not 6: the uncommitted leftover was wiped
        assert run.manifest["warm_start"] is True


class TestWarmStartFreezing:
    def test_frozen_history_keeps_resume_deterministic(self, tmp_path):
        # a shared store with prior-task history
        shared = PersistentPipelineStore(tmp_path / "shared")
        from repro.automl import AutoBazaarSearch
        prior = synth.make_single_table_classification(name="prior", n_samples=90,
                                                       random_state=3)
        AutoBazaarSearch(n_splits=2, random_state=0, store=shared).search(prior, budget=4)
        shared.close()

        reference_dir = tmp_path / "reference"
        reference = ExperimentRun.create(
            reference_dir, task=_task(), budget=BUDGET, n_splits=2, random_state=SEED,
            warm_start_source=str(tmp_path / "shared"),
        ).execute()

        run_dir = tmp_path / "killed"
        run = ExperimentRun.create(
            run_dir, task=_task(), budget=BUDGET, n_splits=2, random_state=SEED,
            warm_start_source=str(tmp_path / "shared"),
        )
        with pytest.raises(_StopRun):
            run.execute(on_report=_kill_after(3))

        # the shared store keeps growing between the kill and the resume;
        # the frozen copy inside the run directory makes this irrelevant
        with PersistentPipelineStore(tmp_path / "shared") as shared_again:
            shared_again.add({"task_name": "later", "template_name": "t", "score": 0.9})

        resumed = resume_run(run_dir)
        assert _stream(resumed.result.records) == _stream(reference.records)
        assert resumed.manifest["warm_start"] is True
