"""Tests for search extensions: wall-clock budgets, checkpoints and warm-starting."""

import pytest

from repro.automl import AutoBazaarSearch
from repro.explorer import PipelineStore
from repro.tasks import synth


@pytest.fixture(scope="module")
def task():
    return synth.make_single_table_classification(n_samples=100, random_state=5)


class TestWallClockBudget:
    def test_zero_second_budget_stops_immediately(self, task):
        searcher = AutoBazaarSearch(n_splits=2, random_state=0)
        result = searcher.search(task, budget=50, max_seconds=0.0)
        assert result.n_evaluated == 0
        assert result.best_score is None

    def test_generous_time_budget_does_not_interfere(self, task):
        searcher = AutoBazaarSearch(n_splits=2, random_state=0)
        result = searcher.search(task, budget=3, max_seconds=600)
        assert result.n_evaluated == 3


class TestCheckpoints:
    def test_checkpoint_scores_monotone(self, task):
        searcher = AutoBazaarSearch(n_splits=2, random_state=0)
        result = searcher.search(task, budget=6)
        checkpoints = result.best_score_at_checkpoints()
        assert len(checkpoints) == 4
        values = [c for c in checkpoints if c is not None]
        assert values == sorted(values)

    def test_custom_fractions(self, task):
        searcher = AutoBazaarSearch(n_splits=2, random_state=0)
        result = searcher.search(task, budget=4)
        checkpoints = result.best_score_at_checkpoints(fractions=(0.5, 1.0))
        assert len(checkpoints) == 2


class TestWarmStart:
    def test_warm_started_search_runs_and_uses_history(self, task):
        # first: run a search on a *different* task to populate the store
        prior_task = synth.make_single_table_classification(n_samples=100, random_state=9)
        store = PipelineStore()
        AutoBazaarSearch(n_splits=2, random_state=0, store=store).search(prior_task, budget=5)
        assert len(store) == 5

        # then: warm-start the search on the new task from that history
        searcher = AutoBazaarSearch(n_splits=2, random_state=0, warm_start_store=store)
        result = searcher.search(task, budget=5)
        assert result.best_score is not None
        assert result.n_evaluated == 5

    def test_warm_start_with_empty_store_is_harmless(self, task):
        searcher = AutoBazaarSearch(n_splits=2, random_state=0, warm_start_store=PipelineStore())
        result = searcher.search(task, budget=3)
        assert result.best_score is not None
