"""Tests for searching over hypertemplate-derived templates (paper Figure 4)."""

import pytest

from repro.automl import AutoBazaarSearch
from repro.automl.catalog import classification_hypertemplate
from repro.tasks import synth


@pytest.fixture(scope="module")
def task():
    return synth.make_single_table_classification(n_samples=100, random_state=13)


class TestClassificationHypertemplate:
    def test_derives_four_templates(self):
        hypertemplate = classification_hypertemplate()
        assert hypertemplate.n_templates() == 4
        templates = hypertemplate.derive_templates()
        assert len({t.name for t in templates}) == 4

    def test_conditional_subspaces_depend_on_depth(self):
        templates = classification_hypertemplate().derive_templates()
        for template in templates:
            depth = template.init_params["xgboost.XGBClassifier#0"]["max_depth"]
            spec = dict(template.get_tunable_hyperparameters())[
                ("xgboost.XGBClassifier#0", "n_estimators")
            ]
            if depth == 2:
                assert spec.range == (20, 80)
            else:
                assert spec.range == (10, 40)


class TestSearchOverHypertemplate:
    def test_search_expands_hypertemplate_into_arms(self, task):
        hypertemplate = classification_hypertemplate()
        searcher = AutoBazaarSearch(templates=[hypertemplate], n_splits=2, random_state=0)
        result = searcher.search(task, budget=5)
        # the first four evaluations are the four derived templates' defaults
        defaults = [r.template_name for r in result.records if r.is_default]
        assert len(defaults) == 4
        assert len(set(defaults)) == 4
        assert result.best_template in set(r.template_name for r in result.records)

    def test_mixed_templates_and_hypertemplates(self, task):
        from repro.automl import get_templates

        hypertemplate = classification_hypertemplate()
        plain = get_templates("single_table", "classification", variant="rf")
        searcher = AutoBazaarSearch(templates=plain + [hypertemplate],
                                    n_splits=2, random_state=0)
        result = searcher.search(task, budget=6)
        assert result.best_score is not None
        evaluated = {r.template_name for r in result.records}
        assert any(name.startswith("tabular_classification_hyper") for name in evaluated)
