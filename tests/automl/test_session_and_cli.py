"""Tests for AutoBazaar sessions and the command-line interface."""

import json

import pytest

from repro.automl import AutoBazaarSession, run_from_directory
from repro.automl.__main__ import build_parser, main
from repro.tasks import save_task, synth
from repro.tuning.selectors import ThompsonSamplingSelector, UCB1Selector
from repro.tuning.tuners import UniformTuner


@pytest.fixture(scope="module")
def task():
    return synth.make_single_table_classification(n_samples=90, random_state=11)


class TestAutoBazaarSession:
    def test_solve_records_results_and_store(self, task):
        session = AutoBazaarSession(budget=4, n_splits=2, random_state=0)
        result = session.solve(task)
        assert result.best_score is not None
        assert len(session.results) == 1
        assert len(session.store) == 4

    def test_solve_suite_accumulates(self):
        from repro.tasks import build_task_suite
        from repro.tasks.types import TaskType

        suite = build_task_suite(
            counts={TaskType("single_table", "classification"): 2}, random_state=1
        )
        session = AutoBazaarSession(budget=3, n_splits=2, random_state=0)
        results = session.solve_suite(suite)
        assert len(results) == 2
        assert len(session.store) == 6

    def test_tuner_and_selector_resolved_by_name(self, task):
        session = AutoBazaarSession(budget=3, tuner="uniform", selector="thompson",
                                    n_splits=2, random_state=0)
        assert session.tuner_class is UniformTuner
        assert session.selector_class is ThompsonSamplingSelector
        assert session.solve(task).best_score is not None

    def test_unknown_tuner_name_rejected(self):
        with pytest.raises(ValueError):
            AutoBazaarSession(tuner="grid_search")

    def test_summary_and_report(self, task):
        session = AutoBazaarSession(budget=4, n_splits=2, random_state=0)
        session.solve(task)
        summary = session.summary()
        assert summary["n_solved_tasks"] == 1
        assert task.name in str(summary["best_templates"])
        text = session.report(title="session X")
        assert "session X" in text

    def test_warm_start_session_reuses_history(self, task):
        session = AutoBazaarSession(budget=4, n_splits=2, random_state=0, warm_start=True)
        first = session.solve(synth.make_single_table_classification(n_samples=90, random_state=3))
        second = session.solve(task)
        assert first.best_score is not None
        assert second.best_score is not None
        assert len(session.store) == 8

    def test_save_store(self, task, tmp_path):
        session = AutoBazaarSession(budget=3, n_splits=2, random_state=0)
        session.solve(task)
        path = session.save_store(tmp_path / "store.json")
        documents = json.loads((tmp_path / "store.json").read_text())
        assert len(documents) == 3
        assert str(path) == str(tmp_path / "store.json")

    def test_default_selector_is_ucb1(self):
        assert AutoBazaarSession().selector_class is UCB1Selector

    def test_in_memory_session_defaults_to_cold_start(self):
        assert AutoBazaarSession().warm_start is False


class TestPersistentSession:
    def test_store_path_persists_across_sessions(self, task, tmp_path):
        first = AutoBazaarSession(budget=3, n_splits=2, random_state=0,
                                  store_path=tmp_path / "store")
        first.solve(task)
        assert len(first.store) == 3

        second = AutoBazaarSession(budget=3, n_splits=2, random_state=0,
                                   store_path=tmp_path / "store")
        assert len(second.store) == 3  # yesterday's records are back

    def test_existing_store_enables_automatic_warm_start(self, task, tmp_path):
        from repro.tasks import synth

        first = AutoBazaarSession(budget=3, n_splits=2, random_state=0,
                                  store_path=tmp_path / "store")
        assert first.warm_start is False  # empty store: cold start
        first.solve(synth.make_single_table_classification(n_samples=90, random_state=3))

        second = AutoBazaarSession(budget=3, n_splits=2, random_state=0,
                                   store_path=tmp_path / "store")
        assert second.warm_start is True  # history found: harvest it
        result = second.solve(task)
        assert result.best_score is not None
        assert len(second.store) == 6

    def test_warm_start_false_overrides_auto(self, task, tmp_path):
        first = AutoBazaarSession(budget=3, n_splits=2, random_state=0,
                                  store_path=tmp_path / "store")
        first.solve(task)
        second = AutoBazaarSession(budget=3, n_splits=2, random_state=0,
                                   store_path=tmp_path / "store", warm_start=False)
        assert second.warm_start is False


class TestRunFromDirectory:
    def test_runs_saved_task(self, task, tmp_path):
        save_task(task, tmp_path / "task")
        session = run_from_directory(
            str(tmp_path / "task"), budget=3, n_splits=2, random_state=0,
            output=str(tmp_path / "out.json"),
        )
        assert len(session.results) == 1
        assert (tmp_path / "out.json").exists()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_from_directory(str(tmp_path / "nope"))


class TestCLI:
    def test_parser_defaults(self):
        arguments = build_parser().parse_args(["some/dir"])
        assert arguments.budget == 20
        assert arguments.tuner == "gp_ei"
        assert arguments.backend == "serial"
        assert arguments.workers is None
        assert arguments.pending == 1

    def test_parser_backend_options(self):
        arguments = build_parser().parse_args(
            ["some/dir", "--backend", "process", "--workers", "4", "--pending", "2"]
        )
        assert arguments.backend == "process"
        assert arguments.workers == 4
        assert arguments.pending == 2

    def test_parser_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["some/dir", "--backend", "cluster"])

    def test_main_with_thread_backend(self, task, tmp_path, capsys):
        save_task(task, tmp_path / "task")
        exit_code = main([
            str(tmp_path / "task"), "--budget", "3", "--splits", "2", "--seed", "0",
            "--backend", "thread", "--workers", "2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best template" in captured.out

    def test_main_happy_path(self, task, tmp_path, capsys):
        save_task(task, tmp_path / "task")
        exit_code = main([
            str(tmp_path / "task"), "--budget", "3", "--splits", "2", "--seed", "0",
            "--output", str(tmp_path / "store.json"),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best template" in captured.out
        assert (tmp_path / "store.json").exists()

    def test_main_missing_directory(self, tmp_path, capsys):
        exit_code = main([str(tmp_path / "does-not-exist")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error" in captured.err

    def test_main_rejects_unknown_tuner(self, task, tmp_path, capsys):
        save_task(task, tmp_path / "task")
        exit_code = main([str(tmp_path / "task"), "--tuner", "banana"])
        assert exit_code == 1


class TestDurableCLI:
    def test_parser_durability_defaults(self):
        arguments = build_parser().parse_args(["some/dir"])
        assert arguments.store_path is None
        assert arguments.run_dir is None
        assert arguments.checkpoint_every == 1
        assert arguments.warm_start == "auto"

    def test_parser_warm_start_flags(self):
        assert build_parser().parse_args(["d", "--warm-start"]).warm_start is True
        assert build_parser().parse_args(["d", "--no-warm-start"]).warm_start is False

    def test_main_with_store_path(self, task, tmp_path, capsys):
        save_task(task, tmp_path / "task")
        exit_code = main([
            str(tmp_path / "task"), "--budget", "3", "--splits", "2", "--seed", "0",
            "--store-path", str(tmp_path / "store"),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "persistent store" in captured.out
        from repro.explorer import PersistentPipelineStore
        assert len(PersistentPipelineStore(tmp_path / "store")) == 3

    def test_main_run_dir_then_resume(self, task, tmp_path, capsys):
        save_task(task, tmp_path / "task")
        exit_code = main([
            str(tmp_path / "task"), "--budget", "3", "--splits", "2", "--seed", "0",
            "--run-dir", str(tmp_path / "run"),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "resume with" in captured.out

        exit_code = main(["resume", str(tmp_path / "run")])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best template" in captured.out
        assert "records in store     : 3" in captured.out

    def test_main_run_dir_rejects_reuse(self, task, tmp_path, capsys):
        save_task(task, tmp_path / "task")
        assert main([str(tmp_path / "task"), "--budget", "2", "--splits", "2",
                     "--run-dir", str(tmp_path / "run")]) == 0
        capsys.readouterr()
        exit_code = main([str(tmp_path / "task"), "--budget", "2", "--splits", "2",
                          "--run-dir", str(tmp_path / "run")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "resume" in captured.err

    def test_resume_missing_directory(self, tmp_path, capsys):
        exit_code = main(["resume", str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error" in captured.err

    def test_forced_warm_start_with_run_dir_requires_store_path(self, task, tmp_path, capsys):
        save_task(task, tmp_path / "task")
        exit_code = main([
            str(tmp_path / "task"), "--budget", "2", "--splits", "2",
            "--run-dir", str(tmp_path / "run"), "--warm-start",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "store" in captured.err.lower()


class TestTelemetryCLI:
    def test_parser_telemetry_default_off(self):
        assert build_parser().parse_args(["some/dir"]).telemetry == "off"

    def test_main_with_telemetry_path_records_events(self, task, tmp_path, capsys):
        from repro.telemetry import load_events, replay_run

        save_task(task, tmp_path / "task")
        events_dir = tmp_path / "events"
        exit_code = main([
            str(tmp_path / "task"), "--budget", "2", "--splits", "2", "--seed", "0",
            "--telemetry", str(events_dir),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best template" in captured.out
        report = replay_run(load_events(events_dir))
        assert report["n_events"] > 0
        assert len(report["records"]) == 2

    def test_main_telemetry_run_dir_requires_run_dir(self, task, tmp_path, capsys):
        save_task(task, tmp_path / "task")
        exit_code = main([
            str(tmp_path / "task"), "--budget", "2", "--splits", "2",
            "--telemetry", "run-dir",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "run-dir" in captured.err
