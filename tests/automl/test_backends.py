"""Tests for the pluggable execution-backend layer.

The central contract: for a fixed ``n_pending`` the search produces the
identical ordered record stream regardless of the backend evaluating the
pipelines, because results are reported back in proposal order.
"""

import threading

import pytest

from repro.automl import (
    AutoBazaarSearch,
    EvaluationCandidate,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.core.template import Template
from repro.explorer import PipelineStore
from repro.tasks import synth
from repro.tuning.selectors import UCB1Selector
from repro.tuning.tuners import GPEiTuner, UniformTuner

ENCODER = "mlprimitives.custom.preprocessing.ClassEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
IMPUTER = "sklearn.impute.SimpleImputer"
SCALER = "sklearn.preprocessing.StandardScaler"


def seeded_templates():
    """Classification templates whose estimators are explicitly seeded.

    The catalog defaults leave ``random_state=None`` (global-RNG
    randomness), which is fine for a search but not for asserting
    bit-identical records across backends.
    """
    return [
        Template(
            "backend_eq_xgb",
            [ENCODER, IMPUTER, SCALER, "xgboost.XGBClassifier", DECODER],
            init_params={"xgboost.XGBClassifier": {"random_state": 0}},
        ),
        Template(
            "backend_eq_rf",
            [ENCODER, IMPUTER, SCALER, "sklearn.ensemble.RandomForestClassifier", DECODER],
            init_params={"sklearn.ensemble.RandomForestClassifier": {"random_state": 0}},
        ),
    ]


def run_search(backend, workers=None, n_pending=1, budget=6):
    return run_search_with_splits(backend, workers=workers, n_pending=n_pending,
                                  budget=budget, n_splits=2)


def run_search_with_splits(backend, workers=None, n_pending=1, budget=6, n_splits=2):
    task = synth.make_single_table_classification(n_samples=90, random_state=0)
    searcher = AutoBazaarSearch(
        templates=seeded_templates(), n_splits=n_splits, random_state=0,
        backend=backend, workers=workers, n_pending=n_pending,
    )
    result = searcher.search(task, budget=budget)
    documents = [record.to_dict() for record in result.records]
    for document in documents:
        # wall-clock timing is the only legitimately backend-dependent field
        document.pop("elapsed")
    return documents


def run_search_with_broken_template(backend):
    broken = Template(
        "broken_pca_eq",
        ["sklearn.decomposition.PCA", "xgboost.XGBClassifier"],
        init_params={"sklearn.decomposition.PCA": {"n_components": 0}},
    )
    task = synth.make_single_table_classification(n_samples=90, random_state=0)
    searcher = AutoBazaarSearch(
        templates=[broken] + seeded_templates(), n_splits=2, random_state=0,
        backend=backend, workers=2,
    )
    result = searcher.search(task, budget=5)
    documents = [record.to_dict() for record in result.records]
    for document in documents:
        document.pop("elapsed")
    return documents


class TestBackendEquivalence:
    def test_serial_thread_process_identical_records(self):
        serial = run_search("serial")
        thread = run_search("thread", workers=2)
        process = run_search("process", workers=2)
        assert serial == thread
        assert serial == process

    def test_batched_proposals_identical_across_backends(self):
        serial = run_search("serial", n_pending=3)
        process = run_search("process", workers=2, n_pending=3)
        assert serial == process

    def test_records_ordered_by_proposal_iteration(self):
        documents = run_search("process", workers=2, n_pending=3)
        assert [d["iteration"] for d in documents] == list(range(len(documents)))


class TestBackendInterface:
    def _candidate(self, iteration=0):
        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        template = seeded_templates()[0]
        return EvaluationCandidate(
            iteration=iteration, template=template,
            hyperparameters=template.default_hyperparameters(),
            task=task, n_splits=2, random_state=0,
        )

    @pytest.mark.parametrize("backend_class", [SerialBackend, ThreadBackend])
    def test_submit_and_collect(self, backend_class):
        backend = backend_class()
        with backend:
            future = backend.submit(self._candidate())
            completed = list(backend.as_completed())
        assert completed == [future]
        outcome = future.result()
        assert outcome.error is None
        assert 0.0 <= outcome.raw_score <= 1.0
        assert outcome.elapsed > 0

    def test_process_backend_collects_multiple_candidates(self):
        with ProcessBackend(workers=2) as backend:
            futures = [backend.submit(self._candidate(i)) for i in range(3)]
            completed = list(backend.as_completed())
        assert sorted(f.candidate.iteration for f in completed) == [0, 1, 2]
        assert {f.candidate.iteration for f in futures} == {0, 1, 2}
        assert all(f.result().error is None for f in completed)

    def test_failed_candidate_reports_error_not_crash(self):
        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        broken = Template(
            "broken_pca",
            ["sklearn.decomposition.PCA", "xgboost.XGBClassifier"],
            init_params={"sklearn.decomposition.PCA": {"n_components": 0}},
        )
        candidate = EvaluationCandidate(
            iteration=0, template=broken,
            hyperparameters=broken.default_hyperparameters(),
            task=task, n_splits=2, random_state=0,
        )
        with ThreadBackend(workers=2) as backend:
            backend.submit(candidate)
            (future,) = list(backend.as_completed())
        assert future.result().error

    def test_split_failure_recorded_like_serial(self):
        # n_splits=1 makes task_cv_splits raise; both backends must record
        # the failure per candidate instead of crashing the search
        serial = run_search_with_splits("serial", n_splits=1)
        thread = run_search_with_splits("thread", n_splits=1)
        assert all(d["error"] for d in serial)
        assert serial == thread

    def test_caller_supplied_backend_survives_search(self):
        backend = ThreadBackend(workers=2)
        try:
            task = synth.make_single_table_classification(n_samples=60, random_state=0)
            searcher = AutoBazaarSearch(
                templates=seeded_templates(), n_splits=2, random_state=0, backend=backend,
            )
            first = searcher.search(task, budget=2)
            second = searcher.search(task, budget=2)
            assert first.best_score is not None
            assert second.best_score is not None
        finally:
            backend.shutdown()

    def test_get_backend_resolution(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend(None), SerialBackend)
        thread = get_backend("thread", workers=3)
        assert isinstance(thread, ThreadBackend)
        assert thread.workers == 3
        thread.shutdown()
        existing = SerialBackend()
        assert get_backend(existing) is existing

    def test_submit_on_shut_down_pool_completes_with_error(self):
        # a fold that cannot even be submitted (broken/shut-down executor)
        # must surface as a failed candidate, never a hang in as_completed
        backend = ThreadBackend(workers=2)
        backend.shutdown()
        future = backend.submit(self._candidate(0))
        completed = list(backend.as_completed())
        assert completed == [future]
        assert "RuntimeError" in future.result().error

    def test_drain_discards_stale_futures(self):
        # an aborted search can leave uncollected futures behind on a
        # caller-owned backend; the next search must not see them
        backend = ThreadBackend(workers=2)
        try:
            backend.submit(self._candidate(0))
            backend.drain()
            backend.submit(self._candidate(7))
            completed = list(backend.as_completed())
            assert [f.candidate.iteration for f in completed] == [7]
        finally:
            backend.shutdown()

    def test_get_backend_honors_subclass(self):
        class TaggedThreadBackend(ThreadBackend):
            pass

        backend = get_backend(TaggedThreadBackend, workers=2)
        try:
            assert type(backend) is TaggedThreadBackend
            assert backend.workers == 2
        finally:
            backend.shutdown()
        assert isinstance(get_backend(SerialBackend), SerialBackend)

    def test_get_backend_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_backend("cluster")

    def test_failing_fold_cancels_later_siblings_not_earlier_error(self):
        # the aggregated error must be the first failing fold in fold
        # order (what the serial backend reports), never a cancellation
        documents_serial = [d for d in run_search_with_broken_template("serial")]
        documents_thread = [d for d in run_search_with_broken_template("thread")]
        for document in documents_serial + documents_thread:
            if document["error"]:
                assert "CancelledError" not in document["error"]
        assert documents_serial == documents_thread

    def test_max_seconds_stops_serial_dispatch_mid_batch(self, monkeypatch):
        import time as time_module

        from repro.automl import search as search_module

        def slow_cv(template, hyperparameters, task, n_splits=3, random_state=None):
            time_module.sleep(0.05)
            return 0.5, 0.5

        monkeypatch.setattr(search_module, "cross_validate_template", slow_cv)
        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        searcher = AutoBazaarSearch(
            templates=seeded_templates(), n_splits=2, random_state=0, n_pending=8,
        )
        result = searcher.search(task, budget=16, max_seconds=0.01)
        # the first evaluation consumes the budget; the remaining 7 batch
        # slots are withdrawn, matching the historical one-evaluation overshoot
        assert result.n_evaluated == 1

    def test_max_seconds_checked_per_proposal(self):
        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        searcher = AutoBazaarSearch(
            templates=seeded_templates(), n_splits=2, random_state=0, n_pending=8,
        )
        result = searcher.search(task, budget=16, max_seconds=0.0)
        # the budget is already exhausted when the first batch is built, so
        # not even one batch of 8 may be dispatched
        assert result.n_evaluated == 0

    def test_invalid_worker_count_raises(self):
        with pytest.raises(ValueError):
            ThreadBackend(workers=0)


class TestBatchProposals:
    def _tuner(self, tuner_class=GPEiTuner):
        space = seeded_templates()[0].get_tunable_hyperparameters()
        return tuner_class(space, random_state=0)

    def test_propose_batch_returns_distinct_configurations(self):
        tuner = self._tuner()
        for score in (0.1, 0.5, 0.3, 0.7):
            params = tuner.propose()
            tuner.record(params, score)
        batch = tuner.propose(n=3)
        assert isinstance(batch, list)
        assert len(batch) == 3
        for i in range(len(batch)):
            for j in range(i + 1, len(batch)):
                assert batch[i] != batch[j]

    def test_propose_batch_clears_constant_liar_state(self):
        tuner = self._tuner()
        for score in (0.2, 0.4, 0.6):
            params = tuner.propose()
            tuner.record(params, score)
        tuner.propose(n=3)
        assert tuner.pending == []
        assert len(tuner.scores) == 3  # lies never leak into the real history

    def test_propose_single_returns_dict(self):
        tuner = self._tuner(UniformTuner)
        assert isinstance(tuner.propose(), dict)
        assert isinstance(tuner.propose(n=1), dict)

    def test_propose_invalid_n_raises(self):
        with pytest.raises(ValueError):
            self._tuner(UniformTuner).propose(n=0)

    def test_pending_resolution(self):
        tuner = self._tuner(UniformTuner)
        params = tuner.propose()
        tuner.add_pending(params)
        assert tuner.pending == [params]
        assert tuner.resolve_pending(params)
        assert tuner.pending == []
        assert not tuner.resolve_pending(params)


class TestPendingAwareSelector:
    def test_pending_counts_shrink_confidence_bonus(self):
        selector = UCB1Selector(["a", "b"], random_state=0)
        scores = {"a": [0.9, 0.9], "b": [0.85]}
        assert selector.select(scores) == "b"  # fewer trials -> bigger bonus
        selector.note_pending("b")
        selector.note_pending("b")
        assert selector.select(scores) == "a"  # b's in-flight work counts
        selector.resolve_pending("b")
        selector.resolve_pending("b")
        assert selector.select(scores) == "b"

    def test_unseen_excludes_pending_candidates(self):
        selector = UCB1Selector(["a", "b"], random_state=0)
        selector.note_pending("a")
        assert selector.select({}) == "b"

    def test_pending_liar_lives_on_the_selector_reward_scale(self):
        from repro.tuning.selectors import BestKVelocitySelector, UCB1Selector

        # velocity rewards are tiny deltas; the liar must not be a raw score
        selector = BestKVelocitySelector(["a", "b"], random_state=0)
        selector.note_pending("b")
        scores = {"a": [0.8, 0.85, 0.9], "b": []}
        assert selector._bandit_state(scores)[2] == pytest.approx(0.05)
        # in the search loop every proposal notes another pending trial, so
        # a batch spreads across arms instead of flooding the scoreless one
        picks = []
        for _ in range(4):
            choice = selector.select(scores)
            picks.append(choice)
            selector.note_pending(choice)
        assert "a" in picks

        # with negative means the liar must stay pessimistic, not 0.0
        selector = UCB1Selector(["a", "b"], random_state=0)
        selector.note_pending("a")
        scores = {"a": [], "b": [-5.0, -4.0]}
        assert selector._bandit_state(scores)[2] == pytest.approx(-4.5)
        picks = []
        for _ in range(4):
            choice = selector.select(scores)
            picks.append(choice)
            selector.note_pending(choice)
        assert set(picks) == {"a", "b"}  # batch spreads, scoreless arm not flooded

    @pytest.mark.parametrize("selector_name", ["ucb1", "best_k", "best_k_velocity", "thompson"])
    def test_scoreless_pending_candidate_is_selectable(self, selector_name):
        # a candidate whose only trials are still in flight (n_pending > 1)
        # reaches the scoring loop with an empty score list; every selector
        # must produce a finite choice instead of crashing
        from repro.tuning.selectors import get_selector

        selector = get_selector(selector_name)(["a", "b"], random_state=0)
        selector.note_pending("a")
        chosen = selector.select({"a": [], "b": [0.5, 0.6]})
        assert chosen in ("a", "b")

    @pytest.mark.parametrize("selector_name", ["best_k", "thompson"])
    def test_search_with_alternative_selector_and_batching(self, selector_name):
        from repro.tuning.selectors import get_selector

        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        searcher = AutoBazaarSearch(
            templates=seeded_templates(), selector_class=get_selector(selector_name),
            n_splits=2, random_state=0, backend="thread", workers=2, n_pending=3,
        )
        result = searcher.search(task, budget=6)
        assert result.n_evaluated == 6
        assert result.best_score is not None


class TestNonFiniteScores:
    def test_non_finite_score_recorded_as_failure(self, monkeypatch):
        from repro.automl import search as search_module

        calls = {"n": 0}

        def fake_cv(template, hyperparameters, task, n_splits=3, random_state=None):
            calls["n"] += 1
            if calls["n"] == 1:
                return float("nan"), float("nan")
            return 0.5, 0.5

        monkeypatch.setattr(search_module, "cross_validate_template", fake_cv)
        task = synth.make_single_table_classification(n_samples=60, random_state=0)
        searcher = AutoBazaarSearch(templates=seeded_templates(), n_splits=2, random_state=0)
        result = searcher.search(task, budget=4)
        assert result.n_evaluated == 4
        assert result.n_failed == 1
        assert "NonFiniteScore" in result.records[0].error
        assert result.records[0].score is None
        assert result.best_score == 0.5


class TestConcurrentStore:
    def test_concurrent_adds_and_indexed_queries(self):
        store = PipelineStore()

        def add_many(task_name):
            for i in range(50):
                store.add({"task_name": task_name, "template_name": "t", "score": i})

        threads = [
            threading.Thread(target=add_many, args=("task-{}".format(i),)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(store) == 200
        assert store.tasks() == ["task-0", "task-1", "task-2", "task-3"]
        assert store.templates() == ["t"]
        assert len(store.find(task_name="task-1")) == 50
        assert len(store.find(task_name="task-1", template_name="t")) == 50
        assert store.find(task_name="missing") == []
        assert len(store.scores_for_task("task-2")) == 50

    def test_indexed_find_matches_linear_scan(self):
        store = PipelineStore()
        for i in range(30):
            store.add({
                "task_name": "task-{}".format(i % 3),
                "template_name": "template-{}".format(i % 2),
                "score": float(i),
            })
        for task_name in ("task-0", "task-1"):
            for template_name in ("template-0", "template-1"):
                indexed = store.find(task_name=task_name, template_name=template_name)
                scanned = [
                    document for document in store
                    if document["task_name"] == task_name
                    and document["template_name"] == template_name
                ]
                assert indexed == scanned
