"""Tests for the multi-tenant fleet coordinator.

Two contracts rule this layer: *fairness* (stride/deficit admission gives
every tenant its weighted share of the shared workers, skew-aware and
starvation-free) and *determinism* (a tenant's record stream is
bit-identical to the same search run solo — the fleet only changes where
and when folds run, never what is reported).
"""

import threading
from concurrent.futures import Future

import pytest

from repro.automl import AutoBazaarSearch, FleetCoordinator, ProcessBackend
from repro.automl.fleet import _DEFAULT_FOLD_COST
from repro.automl.session import AutoBazaarSession
from repro.core.template import Template
from repro.tasks import synth

ENCODER = "mlprimitives.custom.preprocessing.ClassEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
IMPUTER = "sklearn.impute.SimpleImputer"
SCALER = "sklearn.preprocessing.StandardScaler"


def seeded_templates():
    return [
        Template(
            "fleet_eq_xgb",
            [ENCODER, IMPUTER, SCALER, "xgboost.XGBClassifier", DECODER],
            init_params={"xgboost.XGBClassifier": {"random_state": 0}},
        ),
        Template(
            "fleet_eq_rf",
            [ENCODER, IMPUTER, SCALER, "sklearn.ensemble.RandomForestClassifier", DECODER],
            init_params={"sklearn.ensemble.RandomForestClassifier": {"random_state": 0}},
        ),
    ]


def record_documents(result):
    documents = [record.to_dict() for record in result.records]
    for document in documents:
        document.pop("elapsed")  # the only legitimately timing-dependent field
    return documents


def fleet_tasks(n):
    return [
        synth.make_single_table_classification(
            name="fleet-task-{}".format(index), n_samples=80, random_state=index,
        )
        for index in range(n)
    ]


def run_tenants(fleet, tasks, handles, budget=4, n_pending=2):
    results = [None] * len(tasks)
    failures = []

    def run(index):
        searcher = AutoBazaarSearch(
            templates=seeded_templates(), n_splits=2, random_state=0,
            backend=handles[index], n_pending=n_pending,
        )
        try:
            results[index] = searcher.search(tasks[index], budget=budget)
        except BaseException as failure:  # noqa: BLE001 - re-raised by the test
            failures.append(failure)

    threads = [threading.Thread(target=run, args=(index,)) for index in range(len(tasks))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]
    return results


class TestFleetDeterminism:
    def test_thread_fleet_records_identical_to_solo(self):
        tasks = fleet_tasks(2)
        solo = []
        for task in tasks:
            searcher = AutoBazaarSearch(
                templates=seeded_templates(), n_splits=2, random_state=0,
                backend="serial", n_pending=2,
            )
            result = searcher.search(task, budget=4)
            assert result.fleet_stats is None  # solo runs carry no fleet stats
            solo.append(record_documents(result))

        with FleetCoordinator(backend="thread", workers=2) as fleet:
            results = run_tenants(fleet, tasks, [
                fleet.register(name="tenant-{}".format(index)) for index in range(2)
            ])

        for index, result in enumerate(results):
            assert record_documents(result) == solo[index]
            stats = result.fleet_stats
            assert stats["tenant"] == "tenant-{}".format(index)
            assert stats["folds_dispatched"] == 4 * 2  # budget x n_splits
            assert stats["plane_counts"] == {"inline": 1}
            assert stats["queue_depth_hwm"] >= 1
            assert stats["fold_seconds"] > 0

    def test_process_fleet_records_identical_to_solo(self):
        tasks = fleet_tasks(2)
        solo = []
        for task in tasks:
            searcher = AutoBazaarSearch(
                templates=seeded_templates(), n_splits=2, random_state=0,
                backend="serial", n_pending=2,
            )
            solo.append(record_documents(searcher.search(task, budget=3)))

        with FleetCoordinator(backend="process", workers=2) as fleet:
            results = run_tenants(
                fleet, tasks,
                [fleet.register(name="tenant-{}".format(index)) for index in range(2)],
                budget=3,
            )

        for index, result in enumerate(results):
            assert record_documents(result) == solo[index]
            # each tenant's task crossed the process boundary on one plane
            assert sum(result.fleet_stats["plane_counts"].values()) == 1


# -- fair-share scheduling (driven through a manual executor) ----------------------


class _ManualExecutor:
    """Executor stub: submissions pile up until the test completes them."""

    def __init__(self):
        self.submitted = []

    def submit(self, fn, *args, **kwargs):
        future = Future()
        self.submitted.append((args, future))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def _noop(tag):
    return tag


def manual_fleet(workers=1, max_backlog=0):
    fleet = FleetCoordinator(backend="thread", workers=workers, max_backlog=max_backlog)
    fleet._pool._executor.shutdown(wait=False)
    manual = _ManualExecutor()
    fleet._pool._executor = manual
    return fleet, manual


class TestFairShareScheduling:
    def test_weighted_stride_admission_order(self):
        # one admission slot makes the stride order fully observable: a
        # weight-2 tenant must be admitted exactly twice as often as a
        # weight-1 tenant when their fold costs are equal
        fleet, manual = manual_fleet()
        tenant_a = fleet.register(name="a", weight=2.0)
        tenant_b = fleet.register(name="b", weight=1.0)
        for _ in range(30):
            tenant_a._executor.submit(_noop, "a")
            tenant_b._executor.submit(_noop, "b")
        order = []
        while manual.submitted and len(order) < 18:
            args, real = manual.submitted.pop(0)
            order.append(args[0])
            real.set_result({"elapsed": _DEFAULT_FOLD_COST})
        assert len(order) == 18
        assert order.count("a") == 2 * order.count("b")
        fleet.close()

    def test_deficit_correction_is_skew_aware(self):
        # equal weights but 9x skewed fold costs: once measured costs feed
        # the pass values, the cheap tenant streams many folds per
        # expensive one — time shares equalize, not fold counts
        fleet, manual = manual_fleet()
        cheap = fleet.register(name="cheap")
        heavy = fleet.register(name="heavy")
        for _ in range(400):
            cheap._executor.submit(_noop, "cheap")
            heavy._executor.submit(_noop, "heavy")
        costs = {"cheap": 0.01, "heavy": 0.09}
        order = []
        while manual.submitted and len(order) < 120:
            args, real = manual.submitted.pop(0)
            order.append(args[0])
            real.set_result({"elapsed": costs[args[0]]})
        tail = order[20:]  # skip the estimate warm-up
        assert tail.count("heavy") >= 1  # no starvation
        assert tail.count("cheap") >= 5 * tail.count("heavy")
        fleet.close()

    def test_per_tenant_inflight_cap(self):
        fleet, manual = manual_fleet(workers=4, max_backlog=4)
        tenant = fleet.register(name="capped", max_inflight=2)
        futures = [tenant._executor.submit(_noop, "capped") for _ in range(6)]
        assert len(manual.submitted) == 2
        manual.submitted[0][1].set_result({"elapsed": 0.01})
        assert len(manual.submitted) == 3  # the freed slot was re-admitted
        assert not futures[-1].done()
        fleet.close()

    def test_cancelled_queued_fold_never_reaches_the_executor(self):
        fleet, manual = manual_fleet()
        tenant = fleet.register(name="t")
        first = tenant._executor.submit(_noop, "t")
        second = tenant._executor.submit(_noop, "t")
        assert len(manual.submitted) == 1
        assert second.cancel() is True
        assert second.cancelled()
        seen = []
        second.add_done_callback(lambda future: seen.append(future.cancelled()))
        assert seen == [True]  # terminal futures fire callbacks immediately
        manual.submitted[0][1].set_result({"elapsed": 0.01})
        assert len(manual.submitted) == 1  # the cancelled fold was skipped
        assert not first.cancelled()
        fleet.close()

    def test_releasing_a_tenant_cancels_its_queue_and_keeps_the_pool(self):
        fleet, manual = manual_fleet()
        tenant_a = fleet.register(name="a")
        tenant_a._executor.submit(_noop, "a")
        queued = tenant_a._executor.submit(_noop, "a")
        tenant_a.shutdown()  # releases the tenant, not the shared pool
        assert queued.cancelled()
        assert fleet.tenants() == []
        with pytest.raises(RuntimeError):
            tenant_a._executor.submit(_noop, "a")
        tenant_b = fleet.register(name="b")
        tenant_b._executor.submit(_noop, "b")
        assert len(manual.submitted) == 1  # a's admitted fold still holds the slot
        manual.submitted[0][1].set_result({"elapsed": 0.01})
        assert len(manual.submitted) == 2  # b admitted once the slot freed
        fleet.close()

    def test_new_tenant_joins_at_the_minimum_pass(self):
        fleet, manual = manual_fleet()
        veteran = fleet.register(name="veteran")
        for _ in range(10):
            veteran._executor.submit(_noop, "veteran")
        for _ in range(5):
            args, real = manual.submitted.pop(0)
            real.set_result({"elapsed": 0.05})
        newcomer_state = fleet.register(name="newcomer")._state
        assert newcomer_state.pass_value == fleet._tenants["veteran"].pass_value
        fleet.close()


class TestFleetValidation:
    def test_rejects_unknown_backend_and_bad_parameters(self):
        with pytest.raises(ValueError):
            FleetCoordinator(backend="serial")
        with pytest.raises(ValueError):
            FleetCoordinator(backend="process", task_cache_size=0)
        with pytest.raises(ValueError):
            FleetCoordinator(backend="thread", data_plane="shm")
        with pytest.raises(ValueError):
            FleetCoordinator(backend="thread", prefix_cache="bogus")

    def test_register_validation_and_close(self):
        fleet = FleetCoordinator(backend="thread", workers=1)
        fleet.register(name="t")
        with pytest.raises(ValueError):
            fleet.register(name="t")  # duplicate
        with pytest.raises(ValueError):
            fleet.register(weight=0.0)
        with pytest.raises(ValueError):
            fleet.register(max_inflight=0)
        fleet.close()
        with pytest.raises(RuntimeError):
            fleet.register(name="late")
        fleet.close()  # idempotent

    def test_disk_prefix_cache_dir_is_owned_and_removed(self, tmp_path):
        import os

        fleet = FleetCoordinator(backend="thread", workers=1, prefix_cache="disk")
        owned = fleet.cache_dir
        assert owned is not None and os.path.isdir(owned)
        fleet.close()
        assert not os.path.exists(owned)
        # an explicit directory is shared, not owned: it survives close
        explicit = tmp_path / "cache"
        explicit.mkdir()
        fleet = FleetCoordinator(
            backend="thread", workers=1, prefix_cache="disk", cache_dir=str(explicit)
        )
        fleet.close()
        assert explicit.is_dir()

    def test_startup_sweeps_stale_shm_segments(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            "repro.automl.shm.sweep_stale_segments",
            lambda *args, **kwargs: calls.append(1),
        )
        FleetCoordinator(backend="thread", workers=1).close()
        assert len(calls) == 1
        # the process backend sweeps at startup too, on every data plane
        ProcessBackend(workers=1, data_plane="pickle").shutdown()
        assert len(calls) == 2


class TestSessionFleet:
    def test_solve_fleet_runs_all_tasks_into_one_store(self):
        tasks = fleet_tasks(2)
        session = AutoBazaarSession(
            budget=3, tuner="uniform", selector="ucb1", n_splits=2,
            random_state=0, backend="thread", workers=2, n_pending=2,
        )
        results = session.solve_fleet(tasks)
        assert len(results) == 2
        # the search splits a holdout partition off, renaming the task
        for result, task in zip(results, tasks):
            assert result.task_name.startswith(task.name)
        for index, result in enumerate(results):
            assert result.fleet_stats["tenant"] == "t{}-{}".format(index, tasks[index].name)
            assert result.n_evaluated == 3
        assert session.results == results
        assert len(session.store) == 6  # both tenants' records in one store

    def test_solve_fleet_weight_count_mismatch(self):
        session = AutoBazaarSession(budget=2, backend="thread")
        with pytest.raises(ValueError):
            session.solve_fleet(fleet_tasks(2), weights=[1.0])

    def test_solve_fleet_rejects_backend_instances(self):
        session = AutoBazaarSession(budget=2, backend=ProcessBackend(workers=1))
        try:
            with pytest.raises(ValueError):
                session.solve_fleet(fleet_tasks(1))
        finally:
            session.backend.shutdown()


class TestFleetCLI:
    @pytest.fixture()
    def task_dirs(self, tmp_path):
        from repro.tasks import save_task

        directories = []
        for index, task in enumerate(fleet_tasks(2)):
            directory = tmp_path / "task-{}".format(index)
            save_task(task, directory)
            directories.append(str(directory))
        return directories

    def test_fleet_mode_solves_all_tasks(self, task_dirs, capsys):
        from repro.automl.__main__ import main

        exit_code = main(task_dirs + [
            "--fleet", "--backend", "thread", "--workers", "2",
            "--tuner", "uniform", "--budget", "2", "--splits", "2",
            "--pending", "2", "--tenant-weight", "2", "--tenant-weight", "1",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.count("fleet tenant") == 2
        assert "weight 2" in captured.out and "weight 1" in captured.out

    def test_multiple_directories_imply_fleet_mode(self, task_dirs, capsys):
        from repro.automl.__main__ import main

        exit_code = main(task_dirs + [
            "--backend", "thread", "--tuner", "uniform",
            "--budget", "2", "--splits", "2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.count("fleet tenant") == 2

    def test_fleet_mode_rejects_run_dir(self, task_dirs, tmp_path, capsys):
        from repro.automl.__main__ import main

        exit_code = main(task_dirs + ["--run-dir", str(tmp_path / "run")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "--run-dir" in captured.err

    def test_fleet_mode_rejects_weight_count_mismatch(self, task_dirs, capsys):
        from repro.automl.__main__ import main

        exit_code = main(task_dirs + ["--tenant-weight", "1"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "--tenant-weight" in captured.err

    def test_tenant_weight_requires_fleet_mode(self, task_dirs, capsys):
        from repro.automl.__main__ import main

        exit_code = main([task_dirs[0], "--tenant-weight", "1", "--budget", "1"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "fleet" in captured.err
