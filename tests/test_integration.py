"""End-to-end integration tests: catalog templates on every task type, ORION, use cases."""

import numpy as np
import pytest

from repro import MLPipeline
from repro.automl import AutoBazaarSearch, get_templates
from repro.explorer import PipelineStore, improvement_sigmas_per_task, summarize_improvements
from repro.learners.metrics import anomaly_f1_score
from repro.tasks import TASK_TYPES, build_task_suite, synth
from repro.tasks.task import split_task


GENERATORS = {
    ("graph", "community_detection"): synth.make_community_detection,
    ("graph", "graph_matching"): synth.make_graph_matching,
    ("graph", "link_prediction"): synth.make_link_prediction,
    ("graph", "vertex_nomination"): synth.make_vertex_nomination,
    ("image", "classification"): synth.make_image_classification,
    ("image", "regression"): synth.make_image_regression,
    ("multi_table", "classification"): synth.make_multi_table_classification,
    ("multi_table", "regression"): synth.make_multi_table_regression,
    ("single_table", "classification"): synth.make_single_table_classification,
    ("single_table", "collaborative_filtering"): synth.make_collaborative_filtering,
    ("single_table", "regression"): synth.make_single_table_regression,
    ("single_table", "timeseries_forecasting"): synth.make_timeseries_forecasting,
    ("text", "classification"): synth.make_text_classification,
    ("text", "regression"): synth.make_text_regression,
    ("timeseries", "classification"): synth.make_timeseries_classification,
}


class TestDefaultTemplatesSolveEveryTaskType:
    """The core claim of the paper: one framework covers all 15 task types."""

    @pytest.mark.parametrize("task_type", TASK_TYPES,
                             ids=["{}/{}".format(*tt) for tt in TASK_TYPES])
    def test_default_template_fits_and_predicts(self, task_type):
        task = GENERATORS[tuple(task_type)](random_state=3)
        train, test = split_task(task, test_size=0.3, random_state=0)
        template = get_templates(task.data_modality, task.problem_type)[0]
        pipeline = template.build_pipeline()
        pipeline.fit(**train.pipeline_data())
        predictions = pipeline.predict(**test.pipeline_data(include_target=False))
        assert len(predictions) == test.n_samples
        score = test.score(test.context["y"], predictions)
        assert np.isfinite(score)

    @pytest.mark.parametrize("task_type", [
        ("single_table", "classification"),
        ("single_table", "regression"),
        ("text", "classification"),
        ("graph", "link_prediction"),
    ], ids=lambda tt: "{}/{}".format(*tt))
    def test_default_template_beats_chance_on_learnable_tasks(self, task_type):
        task = GENERATORS[tuple(task_type)](random_state=7)
        train, test = split_task(task, test_size=0.3, random_state=0)
        template = get_templates(*task_type)[0]
        pipeline = template.build_pipeline()
        pipeline.fit(**train.pipeline_data())
        predictions = pipeline.predict(**test.pipeline_data(include_target=False))
        score = test.normalized_score(test.context["y"], predictions)
        assert score > 0.3


class TestOrionUseCase:
    """Paper Section I-B / V-A: anomaly detection on satellite telemetry."""

    def test_orion_pipeline_detects_injected_anomalies(self):
        signal, true_anomalies = synth.make_anomaly_signal(
            length=700, n_anomalies=2, anomaly_magnitude=3.5, random_state=3
        )
        pipeline = MLPipeline([
            "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
            "sklearn.impute.SimpleImputer",
            "sklearn.preprocessing.MinMaxScaler",
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
            "keras.Sequential.LSTMTimeSeriesRegressor",
            "mlprimitives.custom.timeseries_anomalies.regression_errors",
            "mlprimitives.custom.timeseries_anomalies.find_anomalies",
        ], init_params={
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences": {
                "window_size": 40},
            "keras.Sequential.LSTMTimeSeriesRegressor": {"epochs": 20, "random_state": 0},
        })
        pipeline.fit(X=signal)
        detections = [(start, end) for start, end, _ in pipeline.predict(X=signal)]
        score = anomaly_f1_score(true_anomalies, detections)
        assert score > 0.4

    def test_orion_pipeline_round_trips_through_json(self, tmp_path):
        path = tmp_path / "orion.json"
        pipeline = MLPipeline([
            "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
            "sklearn.impute.SimpleImputer",
            "sklearn.preprocessing.MinMaxScaler",
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
            "keras.Sequential.LSTMTimeSeriesRegressor",
            "mlprimitives.custom.timeseries_anomalies.regression_errors",
            "mlprimitives.custom.timeseries_anomalies.find_anomalies",
        ])
        pipeline.save(path)
        loaded = MLPipeline.load(path)
        assert loaded.primitives == pipeline.primitives


class TestMiniSuiteSearch:
    """A miniature version of the paper's Section VI-A evaluation."""

    def test_suite_search_improves_over_defaults(self):
        suite = build_task_suite(counts={
            tt: 1 for tt in [
                ("single_table", "classification"),
                ("single_table", "regression"),
                ("graph", "link_prediction"),
            ]
        }, random_state=0)
        store = PipelineStore()
        for task in suite:
            searcher = AutoBazaarSearch(n_splits=2, random_state=0, store=store)
            result = searcher.search(task, budget=6)
            assert result.best_score is not None
        improvements = improvement_sigmas_per_task(store)
        summary = summarize_improvements(improvements)
        assert summary["n_tasks"] == 3
        assert summary["mean_sigmas"] >= 0.0
