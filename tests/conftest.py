"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.RandomState(0)


@pytest.fixture
def classification_data(rng):
    """A small, clearly separable binary classification dataset."""
    X = rng.normal(size=(120, 6))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


@pytest.fixture
def multiclass_data(rng):
    """A small three-class dataset with Gaussian clusters."""
    centers = np.array([[0.0, 0.0], [3.0, 3.0], [-3.0, 3.0]])
    y = rng.randint(0, 3, size=150)
    X = centers[y] + rng.normal(scale=0.6, size=(150, 2))
    X = np.hstack([X, rng.normal(size=(150, 3))])
    return X, y


@pytest.fixture
def regression_data(rng):
    """A small regression dataset with a linear signal."""
    X = rng.normal(size=(120, 5))
    y = 2.0 * X[:, 0] - X[:, 1] + 0.1 * rng.normal(size=120)
    return X, y
