"""Text classification with the Table II template and a custom alternative.

Shows the two sides of the bazaar:

* the *curated default* — the text classification template of paper
  Table II (UniqueCounter -> TextCleaner -> VocabularyCounter -> Tokenizer
  -> pad_sequences -> LSTMTextClassifier); and
* a *user-composed alternative* built from different primitives (TF-IDF +
  gradient boosting) with zero glue code, then a head-to-head comparison.

Run with:  python examples/text_classification.py
"""

import numpy as np

from repro import MLPipeline
from repro.learners.metrics import accuracy_score, f1_score
from repro.tasks.synth import make_text_classification
from repro.tasks.task import split_task


def main():
    task = make_text_classification(
        name="newsgroups_mini", n_samples=240, n_classes=3, random_state=11
    )
    train, test = split_task(task, test_size=0.3, random_state=0)
    X_train, y_train = train.context["X"], train.context["y"]
    X_test, y_test = test.context["X"], test.context["y"]
    print("{} training documents, {} test documents, {} classes".format(
        len(X_train), len(X_test), len(np.unique(y_train))))

    # -- the Table II default template --------------------------------------------
    lstm_pipeline = MLPipeline([
        "mlprimitives.custom.counters.UniqueCounter",
        "mlprimitives.custom.text.TextCleaner",
        "mlprimitives.custom.counters.VocabularyCounter",
        "keras.preprocessing.text.Tokenizer",
        "keras.preprocessing.sequence.pad_sequences",
        "keras.Sequential.LSTMTextClassifier",
    ], init_params={
        "keras.Sequential.LSTMTextClassifier": {"epochs": 30, "random_state": 0},
    })
    lstm_pipeline.fit(X=X_train, y=y_train)
    lstm_predictions = lstm_pipeline.predict(X=X_test)

    # -- a user-composed alternative ------------------------------------------------
    tfidf_pipeline = MLPipeline([
        "mlprimitives.custom.preprocessing.ClassEncoder",
        "mlprimitives.custom.text.TextCleaner",
        "mlprimitives.custom.feature_extraction.StringVectorizer",
        "xgboost.XGBClassifier",
        "mlprimitives.custom.preprocessing.ClassDecoder",
    ], init_params={
        "xgboost.XGBClassifier": {"n_estimators": 25, "random_state": 0},
    })
    tfidf_pipeline.fit(X=X_train, y=y_train)
    tfidf_predictions = tfidf_pipeline.predict(X=X_test)

    print("\n{:28s} {:>10s} {:>10s}".format("pipeline", "accuracy", "macro-F1"))
    for name, predictions in [("sequence model (Table II)", lstm_predictions),
                              ("tf-idf + XGB (custom)", tfidf_predictions)]:
        print("{:28s} {:10.3f} {:10.3f}".format(
            name, accuracy_score(y_test, predictions), f1_score(y_test, predictions)))

    print("\nText pipeline graph (paper Figure 3, top):")
    for producer, consumer, data in sorted(
        (u.split(".")[-1].split("#")[0], v.split(".")[-1].split("#")[0], d["data"])
        for u, v, d in lstm_pipeline.graph().edges(data=True)
    ):
        print("  {:22s} --[{}]--> {}".format(producer, data, consumer))


if __name__ == "__main__":
    main()
