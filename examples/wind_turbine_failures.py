"""Failure prediction in wind turbines (the GreenGuard use case, paper Section V-A.c).

A fleet of turbines produces fixed-length sensor series; the task is to
predict imminent stoppages (time series classification).  The example
compares several candidate templates from the catalog and then lets
AutoBazaar pick and tune one automatically.

Run with:  python examples/wind_turbine_failures.py
"""

from repro.automl import AutoBazaarSearch, get_templates
from repro.learners.metrics import f1_score
from repro.tasks.synth import make_timeseries_classification
from repro.tasks.task import split_task


def main():
    # each sample is one turbine's vibration series over a monitoring window;
    # the label marks whether a stoppage followed
    task = make_timeseries_classification(
        name="turbine_stoppages", n_samples=200, series_length=40, noise=0.5, random_state=21
    )
    train, test = split_task(task, test_size=0.3, random_state=0)
    print("{} turbines for training, {} held out".format(train.n_samples, test.n_samples))

    # -- manual comparison of catalog templates ------------------------------------
    print("\nCandidate templates (fixed default hyperparameters):")
    for template in get_templates("timeseries", "classification"):
        pipeline = template.build_pipeline()
        pipeline.fit(**train.pipeline_data())
        predictions = pipeline.predict(**test.pipeline_data(include_target=False))
        print("  {:42s} macro-F1 = {:.3f}".format(
            template.name, f1_score(test.context['y'], predictions)))

    # -- AutoBazaar search ------------------------------------------------------------
    searcher = AutoBazaarSearch(n_splits=3, random_state=0)
    result = searcher.search(train, budget=10, test_task=test)
    print("\nAutoBazaar best template: {}".format(result.best_template))
    print("Cross-validation score:  {:.3f}".format(result.best_score))
    print("Held-out test score:     {:.3f}".format(result.test_score))
    print("Pipelines evaluated:     {} ({} failed)".format(result.n_evaluated, result.n_failed))
    print("Improvement over default pipeline: {:.2f} standard deviations".format(
        result.improvement_sigmas()))


if __name__ == "__main__":
    main()
