"""AutoBazaar on a mini multi-task suite: one task per data modality.

This demonstrates the full AutoML system of paper Section IV-C: the same
search engine (template selection with a UCB1 bandit, GP-EI tuning per
template, cross-validated scoring) solves tasks from five different data
modalities without any task-specific code.

Run with:  python examples/automl_multitask.py
"""

from repro.automl import AutoBazaarSearch
from repro.explorer import PipelineStore, improvement_sigmas_per_task, summarize_improvements
from repro.tasks import synth


def main():
    tasks = [
        synth.make_single_table_classification(name="tabular/churn", random_state=1),
        synth.make_multi_table_regression(name="relational/spend", random_state=2),
        synth.make_text_classification(name="text/topics", random_state=3),
        synth.make_image_classification(name="image/stripes", random_state=4),
        synth.make_link_prediction(name="graph/links", random_state=5),
    ]

    store = PipelineStore()
    results = []
    for task in tasks:
        searcher = AutoBazaarSearch(n_splits=3, random_state=0, store=store)
        result = searcher.search(task, budget=8)
        results.append(result)
        print("{:22s}  metric={:12s}  best_template={:38s}  cv={:.3f}  test={:.3f}".format(
            task.name, task.metric, str(result.best_template),
            result.best_score, result.test_score,
        ))

    print("\n{} pipelines evaluated in total".format(len(store)))
    improvements = improvement_sigmas_per_task(store)
    summary = summarize_improvements(improvements)
    print("Mean improvement from tuning: {:.2f} standard deviations "
          "({}% of tasks improved by more than 1 sigma)".format(
              summary["mean_sigmas"], round(100 * summary["fraction_above_1_sigma"])))


if __name__ == "__main__":
    main()
