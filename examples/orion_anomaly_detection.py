"""The ORION use case: anomaly detection in satellite telemetry (paper Section I-B, V-A).

The pipeline is specified with exactly the primitive names of paper
Listing 1 — several custom time series primitives, two scikit-learn-style
preprocessors and an LSTM-style forecaster — and detects anomalies as
intervals where the forecast error exceeds a dynamic threshold.

Run with:  python examples/orion_anomaly_detection.py
"""

from repro import MLPipeline
from repro.learners.metrics import anomaly_f1_score
from repro.tasks.synth import make_anomaly_signal

#: The ORION pipeline from paper Listing 1.
ORION_PRIMITIVES = [
    "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
    "sklearn.impute.SimpleImputer",
    "sklearn.preprocessing.MinMaxScaler",
    "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
    "keras.Sequential.LSTMTimeSeriesRegressor",
    "mlprimitives.custom.timeseries_anomalies.regression_errors",
    "mlprimitives.custom.timeseries_anomalies.find_anomalies",
]


def build_orion_pipeline(window_size=40, epochs=25):
    """Build the ORION pipeline with laptop-scale hyperparameters."""
    return MLPipeline(
        ORION_PRIMITIVES,
        init_params={
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences": {
                "window_size": window_size,
            },
            "keras.Sequential.LSTMTimeSeriesRegressor": {
                "epochs": epochs,
                "random_state": 0,
            },
            "mlprimitives.custom.timeseries_anomalies.find_anomalies": {
                "z_threshold": 3.0,
                "anomaly_padding": 3,
            },
        },
    )


def main():
    # simulate a telemetry signal with two injected anomalies (the paper's
    # satellite data is not publicly redistributable)
    signal, true_anomalies = make_anomaly_signal(
        length=900, n_anomalies=2, anomaly_magnitude=3.0, random_state=7
    )
    print("Telemetry signal: {} observations".format(len(signal)))
    print("True anomaly intervals: {}".format(true_anomalies))

    pipeline = build_orion_pipeline()
    pipeline.fit(X=signal)
    detections = pipeline.predict(X=signal)

    print("\nDetected anomaly intervals (start, end, severity):")
    for start, end, severity in detections:
        print("  [{:6.0f}, {:6.0f}]  severity={:.3f}".format(start, end, severity))

    detected_intervals = [(start, end) for start, end, _ in detections]
    score = anomaly_f1_score(true_anomalies, detected_intervals)
    print("\nOverlap-based anomaly F1: {:.3f}".format(score))

    graph = pipeline.graph(inputs=["X"])
    print("\nRecovered computational graph (paper Figure 3, bottom):")
    for producer, consumer, data in sorted(
        (u.split(".")[-1].split("#")[0], v.split(".")[-1].split("#")[0], d["data"])
        for u, v, d in graph.edges(data=True)
    ):
        print("  {:30s} --[{}]--> {}".format(producer, data, consumer))


if __name__ == "__main__":
    main()
