"""Quickstart: compose, fit and tune an end-to-end pipeline from primitives.

This walks through the core ML Bazaar workflow from the paper:

1. browse the curated primitive catalog,
2. compose a pipeline from primitive names alone (no glue code),
3. fit it and predict,
4. wrap it in a template and tune it with a Bayesian-optimization tuner,
5. run a full AutoBazaar search on a parallel execution backend.

Run with:  python examples/quickstart.py

The same backend selection is available on the command line when solving
an on-disk task folder::

    python -m repro.automl path/to/task --backend process --workers 4

``--backend serial`` (the default) reproduces the classic single-threaded
loop record-for-record; ``thread`` and ``process`` dispatch the
cross-validation folds of each candidate pipeline to a worker pool, with
``--pending N`` evaluations kept in flight by the sliding-window
scheduler (``--schedule barrier`` restores the historical round-based
loop) and ``--worker-cache`` controlling the process backend's
worker-resident dataset cache.  Record-for-record reproducibility across
backends additionally requires deterministic pipelines (estimator
``random_state`` seeded via template ``init_params``).
"""

import numpy as np

from repro import MLPipeline, Template, get_default_registry
from repro.automl import AutoBazaarSearch
from repro.learners.metrics import f1_score
from repro.learners.model_selection import train_test_split
from repro.tasks import synth
from repro.tuning import GPEiTuner


def main():
    # ------------------------------------------------------------------ catalog
    registry = get_default_registry()
    print("Curated catalog: {} primitives".format(len(registry)))
    for source, count in sorted(registry.count_by_source().items()):
        print("  {:25s} {}".format(source, count))

    # ------------------------------------------------------------------ data
    rng = np.random.RandomState(42)
    X = rng.normal(size=(300, 10))
    y = np.where(X[:, 0] + 0.5 * X[:, 1] * X[:, 2] > 0, "churn", "stay")
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.3, random_state=0)

    # ------------------------------------------------------------------ pipeline
    # The pipeline description interface: just the ordered list of primitives.
    pipeline = MLPipeline([
        "mlprimitives.custom.preprocessing.ClassEncoder",
        "sklearn.impute.SimpleImputer",
        "sklearn.preprocessing.StandardScaler",
        "xgboost.XGBClassifier",
        "mlprimitives.custom.preprocessing.ClassDecoder",
    ])
    pipeline.fit(X=X_train, y=y_train)
    predictions = pipeline.predict(X=X_test)
    print("\nDefault pipeline macro-F1: {:.3f}".format(f1_score(y_test, predictions)))

    # The computational graph recovered from the description (paper Algorithm 1):
    graph = pipeline.graph()
    print("Recovered graph: {} nodes, {} edges".format(
        graph.number_of_nodes(), graph.number_of_edges()))

    # ------------------------------------------------------------------ tuning
    template = Template(
        name="quickstart_xgb",
        primitives=pipeline.primitives,
    )
    tuner = GPEiTuner(template.get_tunable_hyperparameters(), random_state=0)

    best_score = -np.inf
    best_params = None
    for iteration in range(10):
        params = tuner.propose()
        candidate = template.build_pipeline(params)
        candidate.fit(X=X_train, y=y_train)
        score = f1_score(y_test, candidate.predict(X=X_test))
        tuner.record(params, score)
        if score > best_score:
            best_score, best_params = score, params
        print("  iteration {:2d}  f1={:.3f}  best={:.3f}".format(iteration, score, best_score))

    print("\nBest tuned macro-F1: {:.3f}".format(best_score))
    print("Best hyperparameters:")
    for (step, name), value in sorted(best_params.items(), key=lambda kv: str(kv[0])):
        print("  {:55s} {} = {}".format(step, name, value))

    # ------------------------------------------------------------------ backends
    # A full AutoBazaar search on the thread backend: cross-validation folds
    # are dispatched to a worker pool, and n_pending > 1 proposes a batch of
    # candidates per round (constant-liar batching).  Swap backend="process"
    # for true multi-core parallelism.
    task = synth.make_single_table_classification(n_samples=200, random_state=0)
    searcher = AutoBazaarSearch(
        n_splits=2, random_state=0, backend="thread", workers=2, n_pending=2,
    )
    search_result = searcher.search(task, budget=6)
    print("\nAutoBazaar search on the thread backend:")
    print("  best template : {}".format(search_result.best_template))
    print("  best cv score : {:.3f}".format(search_result.best_score))
    print("  throughput    : {:.2f} pipelines/sec".format(
        search_result.pipelines_per_second))


if __name__ == "__main__":
    main()
