"""Contributing a new primitive to the bazaar (paper Sections III-A and VI-B).

The paper's community model: anyone can annotate a new component, drop it
into the catalog, slot it into an existing template, and evaluate it
against the task suite.  This example walks through exactly that cycle:

1. implement a small new estimator (a median-voting ensemble),
2. write its annotation (name, fit/produce signature, tunable space),
3. register it in a catalog and swap it into the Table II template,
4. compare old vs new primitive over a handful of suite tasks — the same
   protocol as the paper's XGB-vs-RF case study, at a tiny scale.

Run with:  python examples/custom_primitive_contribution.py
"""

import numpy as np

from repro.core.annotations import HyperparamSpec, PrimitiveAnnotation
from repro.core.catalog import build_catalog
from repro.core.template import Template
from repro.learners.base import BaseEstimator, RegressorMixin, check_random_state
from repro.learners.tree import DecisionTreeRegressor
from repro.tasks import build_task_suite
from repro.tasks.task import split_task
from repro.tasks.types import TaskType


# ---------------------------------------------------------------- 1. the new component
class MedianForestRegressor(BaseEstimator, RegressorMixin):
    """A forest that aggregates trees by the median instead of the mean."""

    def __init__(self, n_estimators=10, max_depth=6, random_state=None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state

    def fit(self, X, y):
        rng = check_random_state(self.random_state)
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self.trees_ = []
        for _ in range(self.n_estimators):
            indices = rng.randint(0, len(y), size=len(y))
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, random_state=int(rng.randint(0, 2 ** 31 - 1))
            )
            tree.fit(X[indices], y[indices])
            self.trees_.append(tree)
        return self

    def predict(self, X):
        predictions = np.stack([tree.predict(np.asarray(X, dtype=float)) for tree in self.trees_])
        return np.median(predictions, axis=0)


# ---------------------------------------------------------------- 2. the annotation
MEDIAN_FOREST_ANNOTATION = PrimitiveAnnotation(
    name="contrib.MedianForestRegressor",
    primitive=MedianForestRegressor,
    category="estimator",
    source="community contribution",
    fit={"method": "fit", "args": [{"name": "X", "type": "X"}, {"name": "y", "type": "y"}]},
    produce={"method": "predict", "args": [{"name": "X", "type": "X"}],
             "output": [{"name": "y", "type": "y"}]},
    hyperparameters={"tunable": [
        HyperparamSpec("n_estimators", "int", 10, range=(4, 30)),
        HyperparamSpec("max_depth", "int", 6, range=(2, 12)),
    ]},
    metadata={"author": "you", "description": "Median-aggregated bagged trees."},
)


def main():
    # ------------------------------------------------------------ 3. register + template
    registry = build_catalog()
    registry.register(MEDIAN_FOREST_ANNOTATION)
    print("Catalog now holds {} primitives (added {!r})".format(
        len(registry), MEDIAN_FOREST_ANNOTATION.name))

    incumbent = Template(
        "single_table_regression_xgb",
        ["featuretools.dfs", "sklearn.impute.SimpleImputer",
         "sklearn.preprocessing.StandardScaler", "xgboost.XGBRegressor"],
        registry=registry,
    )
    challenger = Template(
        "single_table_regression_median_forest",
        ["featuretools.dfs", "sklearn.impute.SimpleImputer",
         "sklearn.preprocessing.StandardScaler", "contrib.MedianForestRegressor"],
        registry=registry,
    )

    # ------------------------------------------------------------ 4. evaluate on the suite
    suite = build_task_suite(counts={TaskType("single_table", "regression"): 5}, random_state=7)
    wins = 0
    print("\n{:44s} {:>10s} {:>14s}".format("task", "xgb r2", "median-forest r2"))
    for task in suite:
        train, test = split_task(task, test_size=0.3, random_state=0)
        scores = {}
        for template in (incumbent, challenger):
            pipeline = template.build_pipeline()
            pipeline.fit(**train.pipeline_data())
            predictions = pipeline.predict(**test.pipeline_data(include_target=False))
            scores[template.name] = test.score(test.context["y"], predictions)
        wins += scores[challenger.name] > scores[incumbent.name]
        print("{:44s} {:>10.3f} {:>14.3f}".format(
            task.name, scores[incumbent.name], scores[challenger.name]))

    print("\nMedian forest wins {} / {} tasks against the incumbent XGB template".format(
        wins, len(suite)))
    print("(The paper runs this exact protocol at full scale in Section VI-B.)")


if __name__ == "__main__":
    main()
