"""Setuptools entry point (kept so editable installs work without the wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description="Reproduction of 'The Machine Learning Bazaar' (Smith et al., SIGMOD 2020)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
