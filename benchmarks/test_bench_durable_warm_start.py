"""Durable store — automatic cross-run warm-starting (the tentpole payoff).

The paper's deployed system accumulates every scored pipeline in a
persistent corpus precisely so that later searches can exploit it.  This
bench measures that loop end to end through the durable store: a first
fleet of searches appends its records to a ``PersistentPipelineStore`` on
disk; the store is then *reopened from disk* (exactly what
``AutoBazaarSession(store_path=...)`` does automatically) and used to
warm-start searches on unseen tasks.  The figure of merit is
**evaluations-to-target**: how many pipeline evaluations the warm search
needs to reach the cold search's final best score.

Estimators are explicitly seeded (``estimator_seed``) so cold and warm
runs score identical configurations identically — the comparison
measures the search policy, not pipeline noise.
"""

import numpy as np

from repro.automl import AutoBazaarSearch
from repro.explorer import PersistentPipelineStore
from repro.tasks import synth

N_PRIOR_TASKS = 3
N_EVAL_TASKS = 4
PRIOR_BUDGET = 8
SEARCH_BUDGET = 10


def _make_task(name, seed):
    # enough noise that defaults do not saturate the metric, so tuning
    # (and therefore warm-starting) has headroom to matter
    return synth.make_single_table_classification(
        name=name, n_samples=120, n_features=10, n_informative=3,
        class_sep=0.8, noise=1.6, random_state=seed,
    )


def _evaluations_to_reach(records, target, budget):
    for position, record in enumerate(records):
        if not record.failed and record.score >= target - 1e-12:
            return position + 1
    return budget + 1  # never reached


def _run_benchmark(store_dir):
    # 1. a first fleet of searches populates the durable store on disk
    store = PersistentPipelineStore(store_dir)
    for index in range(N_PRIOR_TASKS):
        AutoBazaarSearch(n_splits=2, random_state=0, estimator_seed=0, store=store).search(
            _make_task("prior_{}".format(index), 200 + index), budget=PRIOR_BUDGET
        )
    store.close()

    # 2. unseen tasks, cold vs warm-started-from-the-reloaded-store
    cold_evals, warm_evals, improvements = [], [], []
    for index in range(N_EVAL_TASKS):
        task = _make_task("eval_{}".format(index), 300 + index)
        cold = AutoBazaarSearch(n_splits=2, random_state=0, estimator_seed=0).search(
            task, budget=SEARCH_BUDGET
        )
        target = cold.best_score
        cold_evals.append(_evaluations_to_reach(cold.records, target, SEARCH_BUDGET))

        # reopen the store from disk -- the cross-run path: records written
        # by one process, harvested by the next
        history = PersistentPipelineStore(store_dir)
        warm = AutoBazaarSearch(n_splits=2, random_state=0, estimator_seed=0,
                                warm_start_store=history).search(task, budget=SEARCH_BUDGET)
        history.close()
        warm_evals.append(_evaluations_to_reach(warm.records, target, SEARCH_BUDGET))
        improvements.append(warm.best_score - cold.best_score)
    return (np.asarray(cold_evals, dtype=float), np.asarray(warm_evals, dtype=float),
            np.asarray(improvements, dtype=float))


def test_durable_store_warm_start_reaches_cold_best_sooner(benchmark, tmp_path):
    cold, warm, improvements = benchmark.pedantic(
        _run_benchmark, args=(str(tmp_path / "store"),), rounds=1, iterations=1
    )

    print("\n\nDurable store — cross-run warm start "
          "({} prior tasks, {} evaluation tasks, budget {})".format(
              N_PRIOR_TASKS, N_EVAL_TASKS, SEARCH_BUDGET))
    print("evaluations to reach the cold-start best score:")
    for index, (c, w) in enumerate(zip(cold, warm)):
        print("  eval_{}: cold {:>4.0f}   warm {}".format(
            index, c, "never" if w > SEARCH_BUDGET else "{:>4.0f}".format(w)))
    print("mean evaluations, cold:  {:.2f}".format(cold.mean()))
    print("mean evaluations, warm:  {:.2f}".format(warm.mean()))
    print("mean best-score delta (warm - cold): {:+.4f}".format(improvements.mean()))

    # the durable history must pay for itself: warm-started searches reach
    # the cold-start best score in no more evaluations on average ...
    assert warm.mean() <= cold.mean()
    # ... and strictly fewer somewhere (the seeded history actually bites)
    assert (warm < cold).any()
    # warm-starting must never hurt the final score at equal budget
    assert improvements.min() >= -1e-9
