"""Section VI-A — overall search performance (throughput and checkpointing).

The paper reports solving each task on its own node at an average rate of
0.13 pipelines scored per second over a 2-hour budget, selecting the best
pipeline at checkpoints of 10, 30, 60 and 120 minutes.  This benchmark
reports the same quantities for the in-process search over the scaled-down
suite: pipelines per second, failure rate, and the best score at
progressive fractions of the budget (the checkpoint analogue).
"""

import numpy as np


def _best_at_checkpoints(result, fractions=(0.25, 0.5, 0.75, 1.0)):
    scores = [record.score for record in result.records if not record.failed]
    checkpoints = []
    for fraction in fractions:
        cutoff = max(1, int(round(fraction * len(result.records))))
        seen = [r.score for r in result.records[:cutoff] if not r.failed]
        checkpoints.append(max(seen) if seen else np.nan)
    return checkpoints if scores else [np.nan] * len(fractions)


def test_overall_search_rate_and_checkpoints(benchmark, suite_search):
    results = suite_search["results"]
    store = suite_search["store"]

    def compute_summary():
        rates = [r.pipelines_per_second for r in results if np.isfinite(r.pipelines_per_second)]
        failures = sum(r.n_failed for r in results)
        evaluated = sum(r.n_evaluated for r in results)
        return {
            "rate": float(np.mean(rates)),
            "failure_rate": failures / evaluated if evaluated else 0.0,
            "evaluated": evaluated,
        }

    summary = benchmark(compute_summary)

    checkpoint_matrix = np.asarray([_best_at_checkpoints(r) for r in results], dtype=float)
    checkpoint_means = np.nanmean(checkpoint_matrix, axis=0)

    print("\n\nSection VI-A — overall search performance")
    print("pipelines evaluated:        {}".format(summary["evaluated"]))
    print("stored documents:           {}".format(len(store)))
    print("pipelines scored / second:  {:.2f}   (paper: 0.13 on m4.xlarge nodes)".format(
        summary["rate"]))
    print("failed evaluations:         {:.1%}".format(summary["failure_rate"]))
    print("mean best score at checkpoints (25/50/75/100% of budget): "
          + " / ".join("{:.3f}".format(v) for v in checkpoint_means))

    # shape: the search makes progress over checkpoints and rarely fails
    assert summary["rate"] > 0.0
    assert summary["failure_rate"] < 0.2
    assert checkpoint_means[-1] >= checkpoint_means[0] - 1e-9
