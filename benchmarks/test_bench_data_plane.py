"""Zero-copy data-plane throughput on a transport-bound fold workload.

A task with tiny folds and a large static context blob goes through a
process backend whose every worker must materialize it once.  The
estimator is free (majority class), leaving transport as the measured
cost — the historical pickle plane serializes the task and deserializes
one full copy per worker, while the shm plane publishes it once and maps
it for free.  Each plane is timed best-of-N to filter disk-scheduler
luck.  The benchmark asserts both halves of the data-plane contract:

* **throughput** — shm fold dispatch is at least 1.3x the pickle plane,
* **correctness** — both planes produce bit-identical scores.

The same workload is what ``scripts/record_bench.py data-plane`` records
to ``BENCH_data_plane.json`` in the ``data-plane`` CI job.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))

from record_bench import DATA_PLANE_THRESHOLD, run_data_plane_benchmark  # noqa: E402

from repro.automl import shm  # noqa: E402


@pytest.fixture(scope="session")
def data_plane_numbers():
    """Collects the measurement for the session-teardown summary."""
    numbers = {}
    yield numbers
    if numbers:
        print("\n\n-- zero-copy data plane on a transport-bound workload --")
        print("  pickle {:7.3f}s   shm {:7.3f}s   ({:.2f}x, threshold {:.2f}x)".format(
            numbers["pickle"], numbers["shm"],
            numbers["speedup"], DATA_PLANE_THRESHOLD))


@pytest.mark.skipif(not shm.shm_available(),
                    reason="shared memory unavailable on this platform")
def test_data_plane_throughput_and_score_identity(benchmark, data_plane_numbers):
    payload = benchmark.pedantic(run_data_plane_benchmark, rounds=1, iterations=1)
    # run_data_plane_benchmark already asserts score identity internally;
    # restate the headline facts so a regression reads clearly in the report
    assert payload["scores_identical"]
    assert payload["shm"]["plane_counts"]["shm"] > 0
    assert payload["pickle"]["plane_counts"]["pickle"] > 0
    data_plane_numbers.update({
        "pickle": payload["pickle"]["elapsed_seconds"],
        "shm": payload["shm"]["elapsed_seconds"],
        "speedup": payload["speedup"],
    })
    assert payload["speedup"] >= DATA_PLANE_THRESHOLD, (
        "shm data-plane speedup {:.2f}x fell below the {:.2f}x acceptance bar".format(
            payload["speedup"], DATA_PLANE_THRESHOLD)
    )
