"""Batched multi-candidate evaluation throughput on a shared-Gram workload.

Same-template Ridge candidates proposed in one barrier round share their
pinned preprocessing prefix and their fold's Gram matrix; batched
evaluation fits the prefix once and pays one cheap solve per alpha where
looped evaluation refits everything per candidate.  The benchmark asserts
both halves of the batching contract:

* **throughput** — batched candidate throughput is at least 1.5x looped,
* **correctness** — the batched record stream (scores, order, errors) is
  bit-identical to the looped one.

The same workload is what ``scripts/record_bench.py batched-eval``
records to ``BENCH_batched_eval.json`` in the ``data-plane`` CI job.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))

from record_bench import BATCHED_EVAL_THRESHOLD, run_batched_eval_benchmark  # noqa: E402


@pytest.fixture(scope="session")
def batched_eval_numbers():
    """Collects the measurement for the session-teardown summary."""
    numbers = {}
    yield numbers
    if numbers:
        print("\n\n-- batched multi-candidate evaluation on a shared-Gram workload --")
        print("  looped {:7.3f}s   batched {:7.3f}s   ({:.2f}x, threshold {:.2f}x)".format(
            numbers["looped"], numbers["batched"],
            numbers["speedup"], BATCHED_EVAL_THRESHOLD))


def test_batched_eval_throughput_and_record_identity(benchmark, batched_eval_numbers):
    payload = benchmark.pedantic(run_batched_eval_benchmark, rounds=1, iterations=1)
    # run_batched_eval_benchmark already asserts record identity internally;
    # restate the headline facts so a regression reads clearly in the report
    assert payload["scores_identical"]
    batched_eval_numbers.update({
        "looped": payload["looped"]["elapsed_seconds"],
        "batched": payload["batched"]["elapsed_seconds"],
        "speedup": payload["speedup"],
    })
    assert payload["speedup"] >= BATCHED_EVAL_THRESHOLD, (
        "batched-eval speedup {:.2f}x fell below the {:.2f}x acceptance bar".format(
            payload["speedup"], BATCHED_EVAL_THRESHOLD)
    )
