"""Ablation benches for the AutoML design choices called out in DESIGN.md.

Two ablations over the same tasks and budget:

* selector ablation — UCB1 bandit selection (the paper's choice, Equations
  3-4) vs uniform random template selection;
* tuner ablation — GP-EI Bayesian optimization (the paper's default tuner)
  vs uniform random search.

The paper's architecture assumes both components earn their keep; the
shape to check is that the principled components do at least as well as
their random counterparts on average.
"""

import numpy as np

from repro.automl import AutoBazaarSearch
from repro.tasks import build_task_suite
from repro.tasks.types import TaskType
from repro.tuning.selectors import UCB1Selector, UniformSelector
from repro.tuning.tuners import GPEiTuner, UniformTuner

TASK_COUNTS = {
    TaskType("single_table", "classification"): 3,
    TaskType("single_table", "regression"): 2,
    TaskType("timeseries", "classification"): 1,
    TaskType("graph", "link_prediction"): 1,
}

SEARCH_BUDGET = 9


def _best_scores(suite, tuner_class, selector_class):
    best = []
    for task in suite:
        searcher = AutoBazaarSearch(
            tuner_class=tuner_class, selector_class=selector_class,
            n_splits=2, random_state=0,
        )
        result = searcher.search(task, budget=SEARCH_BUDGET)
        best.append(result.best_score if result.best_score is not None else np.nan)
    return np.asarray(best, dtype=float)


def test_ablation_selector_ucb1_vs_uniform(benchmark):
    suite = build_task_suite(counts=TASK_COUNTS, random_state=3)

    def run():
        ucb1 = _best_scores(suite, GPEiTuner, UCB1Selector)
        uniform = _best_scores(suite, GPEiTuner, UniformSelector)
        return ucb1, uniform

    ucb1, uniform = benchmark.pedantic(run, rounds=1, iterations=1)
    wins = float(np.mean(ucb1 >= uniform - 1e-9))
    print("\n\nAblation — template selector (UCB1 vs uniform), {} tasks".format(len(ucb1)))
    print("mean best score with UCB1 selector:    {:.3f}".format(np.nanmean(ucb1)))
    print("mean best score with uniform selector: {:.3f}".format(np.nanmean(uniform)))
    print("UCB1 matches or beats uniform on {:.0%} of tasks".format(wins))
    assert np.nanmean(ucb1) >= np.nanmean(uniform) - 0.05


def test_ablation_tuner_gp_vs_random(benchmark):
    suite = build_task_suite(counts=TASK_COUNTS, random_state=4)

    def run():
        gp = _best_scores(suite, GPEiTuner, UCB1Selector)
        random_search = _best_scores(suite, UniformTuner, UCB1Selector)
        return gp, random_search

    gp, random_search = benchmark.pedantic(run, rounds=1, iterations=1)
    wins = float(np.mean(gp >= random_search - 1e-9))
    print("\n\nAblation — tuner (GP-EI vs uniform random search), {} tasks".format(len(gp)))
    print("mean best score with GP-EI tuner:       {:.3f}".format(np.nanmean(gp)))
    print("mean best score with random search:     {:.3f}".format(np.nanmean(random_search)))
    print("GP-EI matches or beats random search on {:.0%} of tasks".format(wins))
    assert np.nanmean(gp) >= np.nanmean(random_search) - 0.05
