"""Telemetry event-stream overhead on an event-dense serial workload.

A search with the structured event stream on (prefix cache enabled, so
every fold also emits cache events) must cost at most ~5% more than the
same search with events off, and its durable stream must replay into a
record stream bit-identical to the real one.  The benchmark asserts both
halves of the telemetry contract:

* **overhead** — events-on candidate throughput is at least 0.95x
  events-off (best-of-N per arm),
* **replayability** — every events-on pass is replayed and cross-checked
  against its real record stream before its timing counts.

The same workload is what ``scripts/record_bench.py telemetry`` records
to ``BENCH_telemetry_overhead.json`` in the ``telemetry`` CI job.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))

from record_bench import TELEMETRY_THRESHOLD, run_telemetry_overhead_benchmark  # noqa: E402


@pytest.fixture(scope="session")
def telemetry_numbers():
    """Collects the measurement for the session-teardown summary."""
    numbers = {}
    yield numbers
    if numbers:
        print("\n\n-- telemetry event-stream overhead on an event-dense workload --")
        print("  events off {:7.3f}s   events on {:7.3f}s   ({:.2f}x, threshold {:.2f}x)".format(
            numbers["events_off"], numbers["events_on"],
            numbers["speedup"], TELEMETRY_THRESHOLD))


def test_telemetry_overhead_and_replay_round_trip(benchmark, telemetry_numbers):
    payload = benchmark.pedantic(run_telemetry_overhead_benchmark,
                                 rounds=1, iterations=1)
    # the runner already asserts the replay round-trip and score identity
    # internally; restate the headline facts so a regression reads clearly
    assert payload["scores_identical"]
    assert payload["replay_round_trip"]
    telemetry_numbers.update({
        "events_off": payload["events_off"]["elapsed_seconds"],
        "events_on": payload["events_on"]["elapsed_seconds"],
        "speedup": payload["speedup"],
    })
    assert payload["speedup"] >= TELEMETRY_THRESHOLD, (
        "telemetry overhead speedup {:.2f}x fell below the {:.2f}x acceptance "
        "bar".format(payload["speedup"], TELEMETRY_THRESHOLD)
    )
