"""Figure 6 — distribution of per-task improvement from AutoML tuning.

The paper measures, for every task, the score of the best pipeline found
minus the score of the initial default pipeline, expressed in standard
deviations of all pipelines evaluated for that task, and reports a mean
improvement of 1.06 sigma with 31.7 percent of tasks improving by more
than one sigma.

This benchmark computes the same statistic over the scaled-down suite
search shared with the Section VI-A benchmark.
"""

import numpy as np

from repro.explorer import improvement_sigmas_per_task, summarize_improvements


def _ascii_density(values, bins=8, width=40):
    histogram, edges = np.histogram(values, bins=bins, range=(0.0, max(4.0, max(values) + 0.5)))
    lines = []
    peak = histogram.max() or 1
    for count, left, right in zip(histogram, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append("  [{:4.1f}, {:4.1f})  {:3d} {}".format(left, right, count, bar))
    return "\n".join(lines)


def test_fig6_improvement_distribution(benchmark, suite_search):
    store = suite_search["store"]
    improvements = benchmark(improvement_sigmas_per_task, store)
    summary = summarize_improvements(improvements)
    values = np.asarray(list(improvements.values()))

    print("\n\nFigure 6 — per-task improvement from tuning (standard deviations)")
    print(_ascii_density(np.clip(values, 0.0, None)))
    print("\ntasks measured:              {}".format(summary["n_tasks"]))
    print("mean improvement (sigma):    {:.2f}   (paper: 1.06)".format(summary["mean_sigmas"]))
    print("median improvement (sigma):  {:.2f}".format(summary["median_sigmas"]))
    print("fraction > 1 sigma:          {:.1%} (paper: 31.7%)".format(
        summary["fraction_above_1_sigma"]))

    # shape: tuning helps on average, a meaningful fraction of tasks improves
    # by more than one standard deviation, and improvements are never negative
    # by construction of the statistic's numerator (best >= first default)
    assert summary["n_tasks"] >= 10
    assert summary["mean_sigmas"] > 0.2
    assert 0.05 <= summary["fraction_above_1_sigma"] <= 0.9
    assert np.all(values >= -1e-9)
