"""Shared fixtures for the benchmark/experiment harness.

The expensive experiment (an AutoBazaar search over the task suite) is run
once per session and shared by the Figure 6 and Section VI-A benchmarks.
"""

import pytest

from repro.automl import AutoBazaarSearch
from repro.explorer import PipelineStore
from repro.tasks import build_task_suite


#: Size of the scaled-down task suite used by the experiments.
SUITE_TASKS = 18

#: Pipeline evaluations per task (the paper uses a 2-hour budget per task on
#: a dedicated node; we use an iteration budget that runs on a laptop).
SEARCH_BUDGET = 8


@pytest.fixture(scope="session")
def task_suite():
    """The scaled-down ML Bazaar task suite (same Table II composition)."""
    return build_task_suite(total_tasks=SUITE_TASKS, random_state=0)


@pytest.fixture(scope="session")
def suite_search(task_suite):
    """AutoBazaar search results over the whole suite (shared across benchmarks)."""
    store = PipelineStore()
    results = []
    for task in task_suite:
        searcher = AutoBazaarSearch(n_splits=2, random_state=0, store=store)
        result = searcher.search(task, budget=SEARCH_BUDGET)
        results.append(result)
    return {"store": store, "results": results}
