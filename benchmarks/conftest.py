"""Shared fixtures for the benchmark/experiment harness.

The expensive experiment (an AutoBazaar search over the task suite) is run
once per session and shared by the Figure 6 and Section VI-A benchmarks.
"""

import numpy as np
import pytest

from repro.automl import AutoBazaarSearch
from repro.explorer import PipelineStore
from repro.tasks import build_task_suite


@pytest.fixture(autouse=True)
def _pin_global_rng():
    """Pin the process-global NumPy RNG for every benchmark test.

    Catalog estimator defaults leave ``random_state=None``, so pipeline
    fits consume the global RNG, which NumPy seeds from OS entropy at
    import — paper-figure assertions that sit near a decision boundary
    (e.g. the CS1 win rate) would otherwise flip run-to-run.  The state
    is restored afterwards so the suite outside ``benchmarks/`` is
    unaffected.
    """
    state = np.random.get_state()
    np.random.seed(20200614)
    yield
    np.random.set_state(state)


#: Size of the scaled-down task suite used by the experiments.
SUITE_TASKS = 18

#: Pipeline evaluations per task (the paper uses a 2-hour budget per task on
#: a dedicated node; we use an iteration budget that runs on a laptop).
SEARCH_BUDGET = 8


@pytest.fixture(scope="session")
def task_suite():
    """The scaled-down ML Bazaar task suite (same Table II composition)."""
    return build_task_suite(total_tasks=SUITE_TASKS, random_state=0)


@pytest.fixture(scope="session")
def suite_search(task_suite):
    """AutoBazaar search results over the whole suite (shared across benchmarks)."""
    # session fixtures are instantiated before the function-scoped autouse
    # RNG pin below, so the expensive experiment needs its own seed; the
    # global state is restored so nothing outside this fixture is coupled
    # to it
    state = np.random.get_state()
    np.random.seed(20200614)
    try:
        store = PipelineStore()
        results = []
        for task in task_suite:
            searcher = AutoBazaarSearch(n_splits=2, random_state=0, store=store)
            result = searcher.search(task, budget=SEARCH_BUDGET)
            results.append(result)
    finally:
        np.random.set_state(state)
    return {"store": store, "results": results}


@pytest.fixture(scope="session")
def schedule_throughput():
    """Collects sliding-window vs barrier wall-clock from the skew benchmarks.

    The printed summary tracks the scheduler's skew resistance: the
    speedup of the sliding-window loop over the historical round barrier
    on an identical skewed candidate stream.
    """
    numbers = {}
    yield numbers
    if numbers:
        print("\n\n-- search scheduler on skewed workload (wall-clock seconds) --")
        for label, entry in sorted(numbers.items()):
            print("  {:12s} barrier {:7.3f}s   window {:7.3f}s   ({:.2f}x)".format(
                label, entry["barrier"], entry["window"], entry["speedup"]))


@pytest.fixture(scope="session")
def backend_throughput():
    """Collects ``{label: pipelines_per_second}`` from the backend benchmarks.

    The summary printed at session teardown is the number future PRs track:
    the serial-vs-process speedup of the execution-backend layer.
    """
    numbers = {}
    yield numbers
    if numbers:
        serial = numbers.get("serial")
        print("\n\n-- execution backend throughput (pipelines/sec) --")
        for label, value in sorted(numbers.items()):
            speedup = "  ({:.2f}x vs serial)".format(value / serial) if serial else ""
            print("  {:22s} {:8.3f}{}".format(label, value, speedup))
