"""Prefix-cache throughput on a shared-prefix tuning workload.

Candidates drawn from one template differ only in estimator
hyperparameters, so their preprocessing prefix is identical across every
fold of every candidate — the workload the fitted-prefix cache exists
for.  The benchmark asserts the two halves of the cache contract:

* **throughput** — with the disk-tier cache on (process backend, 4
  workers), candidate throughput is at least 1.5x the uncached run, and
* **correctness** — the cached run's scores are bit-identical to the
  uncached run's (pruning off), because entries are content-addressed by
  fold data and configured prefix.

The same workload is what ``scripts/record_bench.py`` records to
``BENCH_prefix_cache.json`` in the ``prefix-cache`` CI job.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))

from record_bench import THRESHOLD, run_prefix_cache_benchmark  # noqa: E402


@pytest.fixture(scope="session")
def prefix_cache_numbers():
    """Collects the measurement for the session-teardown summary."""
    numbers = {}
    yield numbers
    if numbers:
        print("\n\n-- fitted-prefix cache on a shared-prefix workload --")
        print("  cache off {:7.3f}s   cache on {:7.3f}s   ({:.2f}x, threshold {:.2f}x)".format(
            numbers["cache_off"], numbers["cache_on"],
            numbers["speedup"], THRESHOLD))
        print("  cache stats: {}".format(numbers["stats"]))


def test_prefix_cache_throughput_and_score_identity(benchmark, prefix_cache_numbers):
    payload = benchmark.pedantic(run_prefix_cache_benchmark, rounds=1, iterations=1)
    # run_prefix_cache_benchmark already asserts score identity internally;
    # restate the headline facts so a regression reads clearly in the report
    assert payload["scores_identical"]
    assert payload["cache_on"]["stats"]["hits"] > 0
    prefix_cache_numbers.update({
        "cache_off": payload["cache_off"]["elapsed_seconds"],
        "cache_on": payload["cache_on"]["elapsed_seconds"],
        "speedup": payload["speedup"],
        "stats": payload["cache_on"]["stats"],
    })
    assert payload["speedup"] >= THRESHOLD, (
        "prefix cache speedup {:.2f}x fell below the {:.2f}x acceptance bar".format(
            payload["speedup"], THRESHOLD)
    )
