"""Section VI-C case study — evaluating an AutoML primitive (GP kernels).

The paper revisits Snoek et al. (2012) and compares a tuner using the
squared exponential kernel (GP-SE-EI) against one using the Matérn 5/2
kernel (GP-Matern52-EI) across 414 tasks / 431k pipelines, finding *no*
improvement from the Matérn kernel — GP-SE-EI wins 60.1 percent of the
comparisons.

The laptop-scale version runs both tuners on the same tasks with the same
templates and budget, and prints the win rate.  The shape to reproduce is
that the two kernels are close, with no clear advantage for Matérn 5/2.
"""

from repro.automl import AutoBazaarSearch
from repro.explorer import PipelineStore, pairwise_win_rate
from repro.tasks import build_task_suite
from repro.tasks.types import TaskType
from repro.tuning.tuners import GPEiTuner, GPMatern52EiTuner

TUNER_VARIANTS = {
    "gp_se_ei": GPEiTuner,
    "gp_matern52_ei": GPMatern52EiTuner,
}

TASK_COUNTS = {
    TaskType("single_table", "classification"): 4,
    TaskType("single_table", "regression"): 3,
    TaskType("multi_table", "classification"): 2,
    TaskType("timeseries", "classification"): 2,
    TaskType("graph", "link_prediction"): 2,
}

SEARCH_BUDGET = 10


def _run_case_study():
    suite = build_task_suite(counts=TASK_COUNTS, random_state=2)
    store = PipelineStore()
    for task in suite:
        for variant, tuner_class in TUNER_VARIANTS.items():
            searcher = AutoBazaarSearch(tuner_class=tuner_class, n_splits=2, random_state=0)
            result = searcher.search(task, budget=SEARCH_BUDGET)
            store.add_result(result, tags={"tuner": variant})
    return store


def test_cs2_se_vs_matern52_kernel(benchmark):
    store = benchmark.pedantic(_run_case_study, rounds=1, iterations=1)
    comparison = pairwise_win_rate(store, "tuner", "gp_se_ei", "gp_matern52_ei")

    print("\n\nCase study 2 (Section VI-C) — GP-SE-EI vs GP-Matern52-EI tuners")
    print("tasks compared:           {}".format(comparison["n_tasks"]))
    print("pipelines evaluated:      {}".format(len(store)))
    print("GP-SE-EI win rate:        {:.1%}   (paper: 60.1%)".format(comparison["win_rate_a"]))
    print("GP-Matern52-EI win rate:  {:.1%}   (paper: 39.9%)".format(comparison["win_rate_b"]))
    print("\nPaper's conclusion (negative result): the Matérn 5/2 kernel alone does not "
          "improve\ngeneral-purpose tuning over the SE kernel.")

    # shape: no clear advantage for the Matérn 5/2 kernel — the SE tuner wins
    # at least as often as a 35% share (i.e. Matérn does not dominate)
    assert comparison["n_tasks"] >= 10
    assert comparison["win_rate_a"] >= 0.35
