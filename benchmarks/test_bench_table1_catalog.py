"""Table I — primitives in the curated catalog, by library source.

Paper numbers (MLPrimitives v0.1.10): scikit-learn 39, MLPrimitives
(custom) 24, Keras 23, Featuretools 3, XGBoost 2, pandas 2, NetworkX 2,
scikit-image 1, NumPy 1, LightFM 1, OpenCV 1, python-louvain 1 (100 total).

Our catalog wraps the numpy substrates under the same names; the benchmark
prints the same per-source breakdown for comparison.
"""

from repro.core.catalog import build_catalog

PAPER_TABLE_1 = {
    "scikit-learn": 39,
    "MLPrimitives (custom)": 24,
    "Keras": 23,
    "Featuretools": 3,
    "XGBoost": 2,
    "pandas": 2,
    "NetworkX": 2,
    "scikit-image": 1,
    "NumPy": 1,
    "LightFM": 1,
    "OpenCV": 1,
    "python-louvain": 1,
}


def test_table1_catalog_by_source(benchmark):
    registry = benchmark(build_catalog)
    counts = registry.count_by_source()

    print("\n\nTable I — primitives in the curated catalog, by source")
    print("{:28s} {:>8s} {:>8s}".format("source", "paper", "ours"))
    for source, paper_count in sorted(PAPER_TABLE_1.items(), key=lambda kv: -kv[1]):
        print("{:28s} {:>8d} {:>8d}".format(source, paper_count, counts.get(source, 0)))
    print("{:28s} {:>8d} {:>8d}".format("total", sum(PAPER_TABLE_1.values()), len(registry)))
    print("\nBy category: {}".format(registry.count_by_category()))

    # shape checks: scikit-learn dominates and every paper source is covered
    assert counts["scikit-learn"] == max(counts.values())
    missing = {source for source in PAPER_TABLE_1 if source not in counts}
    assert not missing
    assert len(registry) >= 70
