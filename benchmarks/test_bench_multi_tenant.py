"""Multi-tenant fleet throughput: N concurrent searches, one worker pool.

Four tenant searches — three cheap, one 10x-expensive straggler — run
concurrently over one shared 4-worker fleet through the fair-share,
skew-aware fold scheduler, and the same searches run (a) one at a time
on the same warm pool and (b) on a static partition of four independent
1-worker pools.  The benchmark asserts the fleet's three contracts:

* **throughput** — aggregate candidates/second stays within 0.8x of the
  sequential run (multiplexing never collapses throughput),
* **work conservation** — the fleet beats the static 1-worker-per-tenant
  partition by at least 1.5x (idle cheap-tenant workers absorb the
  straggler's folds),
* **determinism** — every tenant's record stream is bit-identical to
  its solo serial run.

The same workload is what ``scripts/record_bench.py multi-tenant``
records to ``BENCH_multi_tenant.json`` in the ``multi-tenant`` CI job.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))

from record_bench import (  # noqa: E402
    MULTI_TENANT_STATIC_THRESHOLD,
    MULTI_TENANT_THRESHOLD,
    run_multi_tenant_benchmark,
)


@pytest.fixture(scope="session")
def multi_tenant_numbers():
    """Collects the measurement for the session-teardown summary."""
    numbers = {}
    yield numbers
    if numbers:
        print("\n\n-- multi-tenant fleet over one shared worker pool --")
        print("  sequential {:7.3f}s   fleet {:7.3f}s   static {:7.3f}s".format(
            numbers["sequential"], numbers["fleet"], numbers["static"]))
        print("  vs sequential {:.2f}x (threshold {:.2f}x)   "
              "vs static {:.2f}x (threshold {:.2f}x)".format(
                  numbers["speedup"], MULTI_TENANT_THRESHOLD,
                  numbers["static_speedup"], MULTI_TENANT_STATIC_THRESHOLD))


def test_multi_tenant_throughput_and_record_identity(benchmark,
                                                     multi_tenant_numbers):
    payload = benchmark.pedantic(run_multi_tenant_benchmark, rounds=1, iterations=1)
    # run_multi_tenant_benchmark already asserts per-tenant solo-identical
    # record streams and the static-partition gate internally; restate the
    # headline facts so a regression reads clearly in the report
    assert payload["records_solo_identical"]
    assert len(payload["fleet"]["tenants"]) == payload["workload"]["n_tenants"]
    for stats in payload["fleet"]["tenants"]:
        assert stats["folds_dispatched"] > 0
    multi_tenant_numbers.update({
        "sequential": payload["sequential"]["elapsed_seconds"],
        "fleet": payload["fleet"]["elapsed_seconds"],
        "static": payload["static"]["elapsed_seconds"],
        "speedup": payload["speedup"],
        "static_speedup": payload["static"]["speedup_over_static"],
    })
    assert payload["static"]["speedup_over_static"] >= MULTI_TENANT_STATIC_THRESHOLD
    assert payload["speedup"] >= MULTI_TENANT_THRESHOLD, (
        "fleet aggregate throughput {:.2f}x fell below the {:.2f}x "
        "acceptance bar".format(payload["speedup"], MULTI_TENANT_THRESHOLD)
    )
