"""Figure 5 — AutoBazaar pipelines vs expert-designed baselines on 17 tasks.

In the paper, DARPA curates 17 D3M tasks with pipelines manually designed
and tuned by MIT Lincoln Laboratory experts; ML Bazaar outperforms the
expert baseline on 15/17 tasks with a mean improvement of 0.17 (scores
scaled to [0, 1]).

The D3M datasets and the expert pipelines are not redistributable, so the
substitution (documented in DESIGN.md) is: 17 synthetic tasks spanning the
same mix of task types, with the "expert baseline" played by the curated
default template at its default hyperparameters (a strong, hand-picked,
untuned pipeline) and ML Bazaar played by the full AutoBazaar search.  The
shape to reproduce is ML Bazaar winning the large majority of tasks with a
positive mean improvement.
"""

import numpy as np

from repro.automl import AutoBazaarSearch, evaluate_pipeline, get_templates
from repro.tasks import synth
from repro.tasks.task import split_task

#: 17 tasks mirroring the mix of task types in the D3M comparison set.
D3M_LIKE_TASKS = [
    ("196_autoMpg", synth.make_single_table_regression),
    ("185_baseball", synth.make_single_table_classification),
    ("38_sick", synth.make_single_table_classification),
    ("4550_MiceProtein", synth.make_single_table_classification),
    ("26_radon_seed", synth.make_single_table_regression),
    ("uu3_world_development_indicators", synth.make_single_table_regression),
    ("30_personae", synth.make_text_classification),
    ("32_wikiqa", synth.make_text_classification),
    ("22_handgeometry", synth.make_image_regression),
    ("uu1_datasmash", synth.make_timeseries_classification),
    ("uu4_SPECT", synth.make_timeseries_classification),
    ("59_umls", synth.make_link_prediction),
    ("49_facebook", synth.make_graph_matching),
    ("6_70_com_amazon", synth.make_community_detection),
    ("LL1_net_nomination_seed", synth.make_vertex_nomination),
    ("60_jester", synth.make_collaborative_filtering),
    ("313_spectrometer", synth.make_multi_table_classification),
]

SEARCH_BUDGET = 6


def _scale_scores(scores):
    """Scale a set of normalized scores to [0, 1] like the paper's Figure 5."""
    scores = np.asarray(scores, dtype=float)
    low, high = scores.min(), scores.max()
    if high == low:
        return np.ones_like(scores)
    return (scores - low) / (high - low)


def _run_comparison():
    rows = []
    for index, (name, generator) in enumerate(D3M_LIKE_TASKS):
        task = generator(name=name, random_state=100 + index)
        train, test = split_task(task, test_size=0.3, random_state=0)

        # expert baseline: the curated default template, untuned
        template = get_templates(task.data_modality, task.problem_type)[0]
        baseline_score, _, _ = evaluate_pipeline(
            template, template.default_hyperparameters(), train, test
        )

        # ML Bazaar: full AutoBazaar search with selection + tuning
        searcher = AutoBazaarSearch(n_splits=2, random_state=0)
        result = searcher.search(train, budget=SEARCH_BUDGET, test_task=test)
        bazaar_score = result.test_score if result.test_score is not None else baseline_score
        if not task.higher_is_better:
            bazaar_score = -bazaar_score

        rows.append({"task": name, "baseline": baseline_score, "ml_bazaar": bazaar_score})
    return rows


def test_fig5_automl_vs_expert_baselines(benchmark):
    rows = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)

    # scale each task's pair of scores jointly into [0, 1] (as in the figure,
    # where all performance metrics are scaled to [0, 1])
    all_scores = [row["baseline"] for row in rows] + [row["ml_bazaar"] for row in rows]
    low = min(all_scores)
    span = max(all_scores) - low or 1.0

    wins = 0
    improvements = []
    print("\n\nFigure 5 — ML Bazaar vs expert baseline (scores scaled to [0, 1])")
    print("{:36s} {:>10s} {:>10s} {:>6s}".format("task", "baseline", "ml_bazaar", "win"))
    for row in rows:
        baseline = (row["baseline"] - low) / span
        bazaar = (row["ml_bazaar"] - low) / span
        win = bazaar >= baseline
        wins += int(win)
        improvements.append(bazaar - baseline)
        print("{:36s} {:>10.3f} {:>10.3f} {:>6s}".format(
            row["task"], baseline, bazaar, "yes" if win else "no"))

    mean_improvement = float(np.mean(improvements))
    print("\nML Bazaar wins {} / {} tasks (paper: 15/17)".format(wins, len(rows)))
    print("Mean improvement: {:+.3f} scaled units (paper: +0.17, sigma 0.18)".format(
        mean_improvement))

    # shape: the AutoML system should match or beat the untuned expert default
    # on a clear majority of tasks
    assert wins >= int(0.6 * len(rows))
    assert mean_improvement >= 0.0
