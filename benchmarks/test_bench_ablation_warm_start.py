"""Ablation — meta-learning warm start (the paper's future-work extension).

The paper's conclusion anticipates meta-learning over the growing corpus
of scored pipelines.  This bench measures the implemented version: a first
batch of tasks populates the piex store, then a second batch of unseen
tasks is solved twice — cold (plain GP-EI tuners) and warm (tuners seeded
from the store via ``WarmStartGPTuner``) — and the early-budget best
scores are compared.
"""

import numpy as np

from repro.automl import AutoBazaarSearch
from repro.explorer import PipelineStore
from repro.tasks import synth

N_PRIOR_TASKS = 4
N_EVAL_TASKS = 4
SEARCH_BUDGET = 6


def _run_ablation():
    # 1. populate the history store from prior tasks
    history = PipelineStore()
    for index in range(N_PRIOR_TASKS):
        task = synth.make_single_table_classification(
            name="prior_{}".format(index), random_state=200 + index
        )
        AutoBazaarSearch(n_splits=2, random_state=0, store=history).search(
            task, budget=SEARCH_BUDGET
        )

    # 2. solve unseen tasks cold and warm
    cold_scores, warm_scores = [], []
    for index in range(N_EVAL_TASKS):
        task = synth.make_single_table_classification(
            name="eval_{}".format(index), random_state=300 + index
        )
        cold = AutoBazaarSearch(n_splits=2, random_state=0).search(task, budget=SEARCH_BUDGET)
        warm = AutoBazaarSearch(n_splits=2, random_state=0,
                                warm_start_store=history).search(task, budget=SEARCH_BUDGET)
        cold_scores.append(cold.best_score)
        warm_scores.append(warm.best_score)
    return np.asarray(cold_scores, dtype=float), np.asarray(warm_scores, dtype=float), history


def test_ablation_meta_learning_warm_start(benchmark):
    cold, warm, history = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)

    print("\n\nAblation — meta-learning warm start ({} prior tasks, {} evaluation tasks)".format(
        N_PRIOR_TASKS, N_EVAL_TASKS))
    print("prior pipelines harvested:     {}".format(len(history)))
    print("mean best score, cold start:   {:.3f}".format(np.nanmean(cold)))
    print("mean best score, warm start:   {:.3f}".format(np.nanmean(warm)))
    print("warm start matches or beats cold on {:.0%} of tasks".format(
        float(np.mean(warm >= cold - 1e-9))))

    # shape: warm-starting from history must not hurt at equal budget
    assert np.nanmean(warm) >= np.nanmean(cold) - 0.05
