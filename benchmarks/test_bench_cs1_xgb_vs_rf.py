"""Section VI-B case study — evaluating an ML primitive (XGBoost vs random forest).

The paper swaps the default random forest estimator for XGBoost inside the
same templates and re-runs the general-purpose evaluation; over 1.86
million pipelines and 367 tasks, XGB wins 64.9 percent of the comparisons.

Here the same experiment runs at laptop scale: for every classification /
regression task in a scaled-down suite, AutoBazaar searches once with the
RF-estimator templates and once with the XGB-estimator templates; the best
score per task and per variant is compared and the win rate printed.
"""

import numpy as np

from repro.automl import AutoBazaarSearch, default_template_catalog
from repro.explorer import PipelineStore, pairwise_win_rate
from repro.tasks import build_task_suite
from repro.tasks.types import TaskType

#: Task types whose templates contain a swappable RF/XGB estimator.
ESTIMATOR_TASK_TYPES = [
    TaskType("single_table", "classification"),
    TaskType("single_table", "regression"),
    TaskType("single_table", "timeseries_forecasting"),
    TaskType("multi_table", "classification"),
    TaskType("multi_table", "regression"),
    TaskType("timeseries", "classification"),
    TaskType("graph", "link_prediction"),
    TaskType("graph", "graph_matching"),
]

TASKS_PER_TYPE = 2
SEARCH_BUDGET = 5


def _run_case_study():
    suite = build_task_suite(
        counts={task_type: TASKS_PER_TYPE for task_type in ESTIMATOR_TASK_TYPES},
        random_state=1,
    )
    catalog = default_template_catalog()
    store = PipelineStore()
    for task in suite:
        for variant in ("rf", "xgb"):
            templates = catalog.get(task.data_modality, task.problem_type, variant=variant)
            searcher = AutoBazaarSearch(templates=templates, n_splits=2, random_state=0,
                                        store=None)
            result = searcher.search(task, budget=SEARCH_BUDGET)
            store.add_result(result, tags={"estimator": variant})
    return store


def test_cs1_xgb_vs_rf_win_rate(benchmark):
    store = benchmark.pedantic(_run_case_study, rounds=1, iterations=1)
    comparison = pairwise_win_rate(store, "estimator", "xgb", "rf")

    print("\n\nCase study 1 (Section VI-B) — XGBoost vs random forest estimators")
    print("tasks compared:        {}".format(comparison["n_tasks"]))
    print("pipelines evaluated:   {}".format(len(store)))
    print("XGB win rate:          {:.1%}   (paper: 64.9% over 1.86M pipelines)".format(
        comparison["win_rate_a"]))
    print("RF win rate:           {:.1%}".format(comparison["win_rate_b"]))

    per_task = {}
    for task_name in store.tasks():
        xgb_best = max(store.scores_for_task(task_name, estimator="xgb"), default=np.nan)
        rf_best = max(store.scores_for_task(task_name, estimator="rf"), default=np.nan)
        per_task[task_name] = (xgb_best, rf_best)
    print("\n{:48s} {:>8s} {:>8s}".format("task", "xgb", "rf"))
    for task_name, (xgb_best, rf_best) in sorted(per_task.items()):
        print("{:48s} {:>8.3f} {:>8.3f}".format(task_name, xgb_best, rf_best))

    # shape: the gradient boosting variant wins the majority of comparisons
    assert comparison["n_tasks"] >= 10
    assert comparison["win_rate_a"] > 0.5
