"""Table II — ML task types, task counts and default templates.

The paper's suite has 456 tasks over 15 task types; our synthetic suite
keeps the same composition at a laptop-friendly scale.  The benchmark
prints, for every task type, the paper's task count, our scaled count and
the default template assigned by the AutoBazaar catalog.
"""

from repro.automl import default_template_catalog
from repro.tasks import TABLE_II_COUNTS, build_task_suite


def test_table2_task_suite_composition(benchmark):
    suite = benchmark.pedantic(
        lambda: build_task_suite(total_tasks=30, random_state=0), rounds=1, iterations=1
    )
    counts = suite.counts_by_task_type()
    catalog = default_template_catalog()

    print("\n\nTable II — task types, task counts and default templates")
    print("{:14s} {:26s} {:>6s} {:>6s}  {}".format(
        "modality", "problem type", "paper", "ours", "default template"))
    for task_type, paper_count in sorted(TABLE_II_COUNTS.items(),
                                         key=lambda kv: (kv[0].data_modality, kv[0].problem_type)):
        template = catalog.default_template(task_type.data_modality, task_type.problem_type)
        print("{:14s} {:26s} {:>6d} {:>6d}  {}".format(
            task_type.data_modality, task_type.problem_type, paper_count,
            counts.get(task_type, 0),
            " -> ".join(p.split(".")[-1] for p in template.primitives)))
    print("{:41s} {:>6d} {:>6d}".format("total", sum(TABLE_II_COUNTS.values()), len(suite)))

    # shape checks: all 15 task types covered; single-table classification largest,
    # ~49% of tasks fall outside single-table classification (paper: 49 percent)
    assert len(counts) == 15
    largest = max(counts, key=counts.get)
    assert largest == ("single_table", "classification")
    outside = 1.0 - counts[largest] / len(suite)
    print("\nFraction of tasks outside single-table classification: "
          "{:.0%} (paper: 49%)".format(outside))
    assert 0.25 <= outside <= 0.75
