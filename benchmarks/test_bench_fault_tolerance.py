"""Fault-tolerant execution: supervision overhead and kill recovery.

The same process-backend workload runs on three arms: the plain
unsupervised pool, the supervised pool (fold deadlines, heartbeats,
crash retry) with no faults, and the supervised pool absorbing one
injected worker SIGKILL mid-run.  The benchmark asserts the layer's two
contracts:

* **overhead when idle** — fault-free supervised throughput stays within
  0.95x of the unsupervised pool (<= ~5% supervision tax),
* **recovery** — throughput under one worker kill stays within 0.7x of
  the fault-free supervised run (the respawn pause never dominates),

and restates the masking guarantee the chaos suite pins: every arm's
record stream is bit-identical to a serial baseline.

The same workload is what ``scripts/record_bench.py fault-tolerance``
records to ``BENCH_fault_tolerance.json`` in the ``chaos`` CI job.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))

from record_bench import (  # noqa: E402
    FAULT_RECOVERY_THRESHOLD,
    FAULT_TOLERANCE_THRESHOLD,
    run_fault_tolerance_benchmark,
)


@pytest.fixture(scope="session")
def fault_tolerance_numbers():
    """Collects the measurement for the session-teardown summary."""
    numbers = {}
    yield numbers
    if numbers:
        print("\n\n-- supervised worker pool: overhead and kill recovery --")
        print("  unsupervised {:7.3f}s   supervised {:7.3f}s   "
              "faulted {:7.3f}s".format(
                  numbers["unsupervised"], numbers["supervised"],
                  numbers["faulted"]))
        print("  overhead {:.2f}x (threshold {:.2f}x)   "
              "recovery {:.2f}x (threshold {:.2f}x)".format(
                  numbers["speedup"], FAULT_TOLERANCE_THRESHOLD,
                  numbers["recovery_ratio"], FAULT_RECOVERY_THRESHOLD))


def test_fault_tolerance_overhead_and_recovery(benchmark,
                                               fault_tolerance_numbers):
    payload = benchmark.pedantic(run_fault_tolerance_benchmark,
                                 rounds=1, iterations=1)
    # run_fault_tolerance_benchmark already asserts the serial-identical
    # record streams and the recovery gate internally; restate the
    # headline facts so a regression reads clearly in the report
    assert payload["records_identical"]
    stats = payload["faulted"]["supervisor_stats"]
    assert stats["workers_died"] == 1 and stats["pools_rebuilt"] == 1
    assert stats["folds_quarantined"] == 0
    fault_tolerance_numbers.update({
        "unsupervised": payload["unsupervised"]["elapsed_seconds"],
        "supervised": payload["supervised"]["elapsed_seconds"],
        "faulted": payload["faulted"]["elapsed_seconds"],
        "speedup": payload["speedup"],
        "recovery_ratio": payload["faulted"]["recovery_ratio"],
    })
    assert payload["faulted"]["recovery_ratio"] >= FAULT_RECOVERY_THRESHOLD
    assert payload["speedup"] >= FAULT_TOLERANCE_THRESHOLD, (
        "supervision overhead pushed throughput to {:.2f}x of the "
        "unsupervised pool (bar: {:.2f}x)".format(
            payload["speedup"], FAULT_TOLERANCE_THRESHOLD)
    )
