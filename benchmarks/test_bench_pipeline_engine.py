"""Figure 3 / Listing 1 — pipeline engine throughput and graph recovery cost.

These micro-benchmarks measure the MLBlocks-equivalent execution engine on
the two pipelines drawn in paper Figure 3 (the ORION anomaly detection
pipeline and the text classification pipeline), plus the cost of the
Algorithm 1 graph-recovery procedure as a function of pipeline length —
the design choice DESIGN.md calls out (graph recovery is run per pipeline
validation, so it must stay negligible next to a single model fit).
"""

import numpy as np
import pytest

from repro import MLPipeline
from repro.tasks import synth

ORION_PRIMITIVES = [
    "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
    "sklearn.impute.SimpleImputer",
    "sklearn.preprocessing.MinMaxScaler",
    "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
    "keras.Sequential.LSTMTimeSeriesRegressor",
    "mlprimitives.custom.timeseries_anomalies.regression_errors",
    "mlprimitives.custom.timeseries_anomalies.find_anomalies",
]

TEXT_PRIMITIVES = [
    "mlprimitives.custom.counters.UniqueCounter",
    "mlprimitives.custom.text.TextCleaner",
    "mlprimitives.custom.counters.VocabularyCounter",
    "keras.preprocessing.text.Tokenizer",
    "keras.preprocessing.sequence.pad_sequences",
    "keras.Sequential.LSTMTextClassifier",
]


def test_orion_pipeline_fit_produce(benchmark):
    signal, _ = synth.make_anomaly_signal(length=500, random_state=0)
    pipeline = MLPipeline(ORION_PRIMITIVES, init_params={
        "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences": {
            "window_size": 30},
        "keras.Sequential.LSTMTimeSeriesRegressor": {"epochs": 5, "random_state": 0},
    })

    def fit_and_detect():
        pipeline.fit(X=signal)
        return pipeline.predict(X=signal)

    anomalies = benchmark.pedantic(fit_and_detect, rounds=3, iterations=1)
    print("\nORION pipeline (Listing 1): {} steps, {} anomalies detected on a "
          "{}-point signal".format(len(ORION_PRIMITIVES), len(anomalies), len(signal)))
    assert isinstance(anomalies, list)


def test_text_pipeline_fit_predict(benchmark):
    task = synth.make_text_classification(n_samples=150, random_state=0)
    X, y = task.context["X"], task.context["y"]
    pipeline = MLPipeline(TEXT_PRIMITIVES, init_params={
        "keras.Sequential.LSTMTextClassifier": {"epochs": 10, "random_state": 0},
    })

    def fit_and_predict():
        pipeline.fit(X=X, y=y)
        return pipeline.predict(X=X)

    predictions = benchmark.pedantic(fit_and_predict, rounds=3, iterations=1)
    accuracy = float(np.mean(predictions == y))
    print("\nText classification pipeline (Figure 3, top): training accuracy {:.3f}".format(
        accuracy))
    assert accuracy > 0.6


BACKEND_CONFIGS = [
    ("serial", "serial", None),
    ("process-1", "process", 1),
    ("process-2", "process", 2),
    ("process-4", "process", 4),
]


@pytest.mark.parametrize("label,backend,workers", BACKEND_CONFIGS,
                         ids=[config[0] for config in BACKEND_CONFIGS])
def test_search_throughput_by_backend(benchmark, backend_throughput, label, backend, workers):
    """Section IV-C — pipelines/sec of the search by execution backend.

    The process backend dispatches cross-validation folds to a worker pool
    (work-stealing over folds), so on multi-core hardware its throughput
    should scale with the worker count; the printed summary is the number
    future scaling PRs track.  Every configuration proposes batches of 4
    (constant-liar), so up to 4 x n_splits folds are in flight at once and
    the 4-worker pool is never starved by the proposal loop.
    """
    from repro.automl import AutoBazaarSearch
    from repro.tasks import synth

    task = synth.make_single_table_classification(n_samples=240, random_state=0)

    def run_search():
        searcher = AutoBazaarSearch(
            n_splits=3, random_state=0, backend=backend, workers=workers,
            n_pending=4,
        )
        return searcher.search(task, budget=6)

    result = benchmark.pedantic(run_search, rounds=1, iterations=1)
    assert result.n_evaluated == 6
    backend_throughput[label] = result.pipelines_per_second
    print("\n{}: {:.3f} pipelines/sec over {} evaluations".format(
        label, result.pipelines_per_second, result.n_evaluated))


@pytest.mark.parametrize("n_steps", [2, 4, 8, 16])
def test_graph_recovery_scales_with_pipeline_length(benchmark, n_steps):
    # alternate imputer/scaler steps to build progressively longer chains
    middle = ["sklearn.impute.SimpleImputer", "sklearn.preprocessing.StandardScaler"] * (
        n_steps // 2
    )
    pipeline = MLPipeline(middle + ["xgboost.XGBRegressor"])
    graph = benchmark(pipeline.graph)
    assert graph.number_of_nodes() == len(middle) + 3  # steps + estimator + source + sink
