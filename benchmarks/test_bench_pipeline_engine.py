"""Figure 3 / Listing 1 — pipeline engine throughput and graph recovery cost.

These micro-benchmarks measure the MLBlocks-equivalent execution engine on
the two pipelines drawn in paper Figure 3 (the ORION anomaly detection
pipeline and the text classification pipeline), plus the cost of the
Algorithm 1 graph-recovery procedure as a function of pipeline length —
the design choice DESIGN.md calls out (graph recovery is run per pipeline
validation, so it must stay negligible next to a single model fit).
"""

import numpy as np
import pytest

from repro import MLPipeline
from repro.tasks import synth

ORION_PRIMITIVES = [
    "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
    "sklearn.impute.SimpleImputer",
    "sklearn.preprocessing.MinMaxScaler",
    "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
    "keras.Sequential.LSTMTimeSeriesRegressor",
    "mlprimitives.custom.timeseries_anomalies.regression_errors",
    "mlprimitives.custom.timeseries_anomalies.find_anomalies",
]

TEXT_PRIMITIVES = [
    "mlprimitives.custom.counters.UniqueCounter",
    "mlprimitives.custom.text.TextCleaner",
    "mlprimitives.custom.counters.VocabularyCounter",
    "keras.preprocessing.text.Tokenizer",
    "keras.preprocessing.sequence.pad_sequences",
    "keras.Sequential.LSTMTextClassifier",
]


def test_orion_pipeline_fit_produce(benchmark):
    signal, _ = synth.make_anomaly_signal(length=500, random_state=0)
    pipeline = MLPipeline(ORION_PRIMITIVES, init_params={
        "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences": {
            "window_size": 30},
        "keras.Sequential.LSTMTimeSeriesRegressor": {"epochs": 5, "random_state": 0},
    })

    def fit_and_detect():
        pipeline.fit(X=signal)
        return pipeline.predict(X=signal)

    anomalies = benchmark.pedantic(fit_and_detect, rounds=3, iterations=1)
    print("\nORION pipeline (Listing 1): {} steps, {} anomalies detected on a "
          "{}-point signal".format(len(ORION_PRIMITIVES), len(anomalies), len(signal)))
    assert isinstance(anomalies, list)


def test_text_pipeline_fit_predict(benchmark):
    task = synth.make_text_classification(n_samples=150, random_state=0)
    X, y = task.context["X"], task.context["y"]
    pipeline = MLPipeline(TEXT_PRIMITIVES, init_params={
        "keras.Sequential.LSTMTextClassifier": {"epochs": 10, "random_state": 0},
    })

    def fit_and_predict():
        pipeline.fit(X=X, y=y)
        return pipeline.predict(X=X)

    predictions = benchmark.pedantic(fit_and_predict, rounds=3, iterations=1)
    accuracy = float(np.mean(predictions == y))
    print("\nText classification pipeline (Figure 3, top): training accuracy {:.3f}".format(
        accuracy))
    assert accuracy > 0.6


BACKEND_CONFIGS = [
    ("serial", "serial", None),
    ("process-1", "process", 1),
    ("process-2", "process", 2),
    ("process-4", "process", 4),
]


@pytest.mark.parametrize("label,backend,workers", BACKEND_CONFIGS,
                         ids=[config[0] for config in BACKEND_CONFIGS])
def test_search_throughput_by_backend(benchmark, backend_throughput, label, backend, workers):
    """Section IV-C — pipelines/sec of the search by execution backend.

    The process backend dispatches cross-validation folds to a worker pool
    (work-stealing over folds), so on multi-core hardware its throughput
    should scale with the worker count; the printed summary is the number
    future scaling PRs track.  Every configuration proposes batches of 4
    (constant-liar), so up to 4 x n_splits folds are in flight at once and
    the 4-worker pool is never starved by the proposal loop.
    """
    from repro.automl import AutoBazaarSearch
    from repro.tasks import synth

    task = synth.make_single_table_classification(n_samples=240, random_state=0)

    def run_search():
        searcher = AutoBazaarSearch(
            n_splits=3, random_state=0, backend=backend, workers=workers,
            n_pending=4,
        )
        return searcher.search(task, budget=6)

    result = benchmark.pedantic(run_search, rounds=1, iterations=1)
    assert result.n_evaluated == 6
    backend_throughput[label] = result.pipelines_per_second
    print("\n{}: {:.3f} pipelines/sec over {} evaluations".format(
        label, result.pipelines_per_second, result.n_evaluated))


SLEEPY = "mlprimitives.custom.synthetic.TimedDummyClassifier"

#: Iterations evaluated per skewed-workload search.
SKEW_BUDGET = 28

#: Iterations proposing the expensive template.  The pairs straddle the
#: barrier's round boundaries (rounds of ``n_pending=4``), the layout
#: where per-round draining hurts most: the barrier pays one full heavy
#: evaluation per round, while the sliding window overlaps each pair
#: (the second heavy of a pair only needs a much older record reported).
SKEW_HEAVY_ITERATIONS = frozenset({1, 7, 8, 15, 16, 23, 24})

#: Artificial per-fold fit cost of the heavy and light templates.
SKEW_HEAVY_SECONDS = 0.2
SKEW_LIGHT_SECONDS = 0.003


def _skew_templates():
    from repro.core.template import Template

    heavy = Template("skew_heavy", [SLEEPY],
                     init_params={SLEEPY: {"fit_seconds": SKEW_HEAVY_SECONDS}})
    light = Template("skew_light", [SLEEPY],
                     init_params={SLEEPY: {"fit_seconds": SKEW_LIGHT_SECONDS}})
    return [light, heavy]  # defaults: light at iteration 0, heavy at 1


def _make_skew_selector():
    """Selector that replays the fixed heavy/light proposal sequence.

    Scripting the selection isolates the variable under test — the
    scheduler — from selection dynamics: both schedules and every worker
    count evaluate the identical candidate stream.
    """
    from repro.tuning.selectors import BaseSelector

    class ScriptedSkewSelector(BaseSelector):
        def __init__(self, candidates, random_state=None):
            super().__init__(candidates, random_state=random_state)
            self._iteration = 2  # iterations 0 and 1 are the defaults

        def select(self, candidate_scores):
            name = "skew_heavy" if self._iteration in SKEW_HEAVY_ITERATIONS else "skew_light"
            self._iteration += 1
            return name

    return ScriptedSkewSelector


def _run_skewed_search(schedule, workers):
    from repro.automl import AutoBazaarSearch

    task = synth.make_single_table_classification(n_samples=60, random_state=0)
    searcher = AutoBazaarSearch(
        templates=_skew_templates(), selector_class=_make_skew_selector(),
        n_splits=2, random_state=0, backend="process", workers=workers,
        n_pending=4, schedule=schedule,
    )
    return searcher.search(task, budget=SKEW_BUDGET)


@pytest.mark.parametrize("workers", [2, 4])
def test_skewed_workload_window_vs_barrier(benchmark, schedule_throughput, workers):
    """Sliding-window vs round-barrier scheduling under skewed pipeline costs.

    The classic skew problem in parallel evaluation: one expensive
    pipeline per round leaves every other worker idle while the barrier
    drains.  The sliding window keeps proposing replacements for the
    cheap slots, so heavy evaluations that sit within ``n_pending`` of
    each other overlap instead of serializing round by round.  At
    ``workers=4`` the window must beat the barrier by >= 1.3x wall-clock
    (the acceptance bar for this scheduler); at ``workers=2`` the heavy
    folds saturate the pool and the gap narrows, so the ratio is only
    tracked, not asserted.
    """
    barrier_result = _run_skewed_search("barrier", workers)
    assert barrier_result.n_evaluated == SKEW_BUDGET
    assert barrier_result.n_failed == 0

    window_result = benchmark.pedantic(
        lambda: _run_skewed_search("window", workers), rounds=1, iterations=1
    )
    assert window_result.n_evaluated == SKEW_BUDGET
    assert window_result.n_failed == 0
    # both schedules must score the identical candidate stream
    assert ([r.template_name for r in window_result.records]
            == [r.template_name for r in barrier_result.records])

    speedup = barrier_result.elapsed / window_result.elapsed
    schedule_throughput["workers={}".format(workers)] = {
        "barrier": barrier_result.elapsed,
        "window": window_result.elapsed,
        "speedup": speedup,
    }
    print("\nskewed workload, workers={}: barrier {:.3f}s, window {:.3f}s ({:.2f}x)".format(
        workers, barrier_result.elapsed, window_result.elapsed, speedup))
    if workers == 4:
        assert speedup >= 1.3


@pytest.mark.parametrize("n_steps", [2, 4, 8, 16])
def test_graph_recovery_scales_with_pipeline_length(benchmark, n_steps):
    # alternate imputer/scaler steps to build progressively longer chains
    middle = ["sklearn.impute.SimpleImputer", "sklearn.preprocessing.StandardScaler"] * (
        n_steps // 2
    )
    pipeline = MLPipeline(middle + ["xgboost.XGBRegressor"])
    graph = benchmark(pipeline.graph)
    assert graph.number_of_nodes() == len(middle) + 3  # steps + estimator + source + sink
