"""Kill-and-resume equivalence smoke test (the CI durability gate).

Drives the full crash story end to end, with a real ``SIGKILL``:

1. run an uninterrupted checkpointed search (serial backend) and record
   its stream of (template, hyperparameters, score) records — the
   baseline;
2. run the identical search in a child process that ``SIGKILL``s itself
   the moment the k-th record has been reported (records are durable in
   the run directory's JSONL segment log *before* the kill point);
3. resume the killed run with the library's resume path and assert that
   the final record stream is identical to the baseline and that the
   durable store holds every record exactly once — no duplicates, no
   losses.

Usage::

    python scripts/crash_resume_smoke.py              # parent: run the whole gate
    python scripts/crash_resume_smoke.py --child DIR --kill-after K   # internal
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

BUDGET = 6
KILL_AFTER = 3
SEED = 0
N_SPLITS = 2


def _make_task():
    from repro.tasks import synth

    return synth.make_single_table_classification(n_samples=90, random_state=11)


def _create_run(run_dir):
    from repro.automl import ExperimentRun

    return ExperimentRun.create(
        run_dir, task=_make_task(), budget=BUDGET, n_splits=N_SPLITS, random_state=SEED,
    )


def _stream(records):
    """The equivalence view of a record stream: template, hyperparameters, score."""
    from repro.explorer import normalize_value

    return [
        [
            record.iteration,
            record.template_name,
            normalize_value({str(k): v for k, v in record.hyperparameters.items()}),
            record.score,
            record.error,
        ]
        for record in records
    ]


def _child(run_dir, kill_after):
    """Run the search, then SIGKILL this process as record ``kill_after`` lands."""
    run = _create_run(run_dir)

    def killer(state):
        if state["n_reported"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    run.execute(on_report=killer)
    raise AssertionError("the killer hook never fired")  # pragma: no cover


def _parent():
    from repro.automl import resume_run

    with tempfile.TemporaryDirectory(prefix="crash-resume-") as workdir:
        baseline_dir = os.path.join(workdir, "baseline")
        killed_dir = os.path.join(workdir, "killed")

        print("== 1/3 uninterrupted baseline ({} evaluations)".format(BUDGET))
        baseline = _stream(_create_run(baseline_dir).execute().records)
        assert len(baseline) == BUDGET, baseline

        print("== 2/3 killed run (SIGKILL after {} reported records)".format(KILL_AFTER))
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child", killed_dir,
             "--kill-after", str(KILL_AFTER)],
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")
                 + os.pathsep + os.environ.get("PYTHONPATH", "")},
        )
        assert child.returncode == -signal.SIGKILL, (
            "expected the child to die from SIGKILL, got returncode {}".format(
                child.returncode)
        )

        # the durable log must hold exactly the records reported before the kill
        from repro.explorer import PersistentPipelineStore
        with PersistentPipelineStore(os.path.join(killed_dir, "store")) as partial:
            durable = sorted(document["iteration"] for document in partial)
        assert durable == list(range(KILL_AFTER)), durable
        print("   durable records at kill time: {}".format(durable))

        print("== 3/3 resume and compare")
        resumed = resume_run(killed_dir)
        resumed_stream = _stream(resumed.result.records)
        assert resumed_stream == baseline, (
            "resumed stream diverged from the uninterrupted baseline:\n{}\nvs\n{}".format(
                json.dumps(resumed_stream, indent=2), json.dumps(baseline, indent=2))
        )
        iterations = sorted(document["iteration"] for document in resumed.store)
        assert iterations == list(range(BUDGET)), (
            "store lost or duplicated records: {}".format(iterations)
        )
        print("   resumed stream identical to baseline "
              "({} records, no duplicates, no losses)".format(len(iterations)))
    print("crash/resume smoke: OK")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", metavar="RUN_DIR", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--kill-after", type=int, default=KILL_AFTER,
                        help=argparse.SUPPRESS)
    arguments = parser.parse_args(argv)
    if arguments.child:
        _child(arguments.child, arguments.kill_after)
        return 0
    _parent()
    return 0


if __name__ == "__main__":
    sys.exit(main())
