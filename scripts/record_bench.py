"""Prefix-cache throughput benchmark, recorded to ``BENCH_prefix_cache.json``.

The workload is the cache's home turf, shaped like a real tuning session:
every candidate shares an expensive preprocessing prefix (a
``TimedIdentityTransformer`` standing in for a costly imputer/encoder
chain) and differs only in estimator hyperparameters.  Without the cache,
the prefix is refit for every fold of every candidate; with the
disk-tier cache, process-pool workers fit each (prefix, fold) combination
once and share the artifacts through the content-addressed store.

The script runs the search cache-off and cache-on (process backend, 4
workers), asserts

* >= ``THRESHOLD``x candidate throughput with the cache enabled, and
* bit-identical scores between the two runs (pruning stays off),

then writes the measurements to ``BENCH_prefix_cache.json`` so the perf
trajectory is tracked in the repository.  CI runs this script as the
``prefix-cache`` job; a cache regression fails the build here.

Usage::

    PYTHONPATH=src python scripts/record_bench.py [--output BENCH_prefix_cache.json]
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Acceptance bar: cache-on candidate throughput vs cache-off.
THRESHOLD = 1.5

#: Artificial fit cost of the shared preprocessing prefix, per fold.
PREFIX_SECONDS = 0.3

#: Pipeline evaluations per run.
BUDGET = 12

#: Worker processes evaluating folds.
WORKERS = 4

ENCODER = "mlprimitives.custom.preprocessing.ClassEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
TIMED_IDENTITY = "mlprimitives.custom.synthetic.TimedIdentityTransformer"
LOGISTIC = "sklearn.linear_model.LogisticRegression"


def shared_prefix_templates(prefix_seconds=PREFIX_SECONDS):
    """One template whose candidates differ only in estimator hyperparameters."""
    from repro.core.template import Template

    return [
        Template(
            "prefix_cache_bench",
            [ENCODER, TIMED_IDENTITY, LOGISTIC, DECODER],
            init_params={TIMED_IDENTITY: {"fit_seconds": prefix_seconds}},
        ),
    ]


def _run_search(prefix_cache, cache_dir, workers, budget, prefix_seconds):
    from repro.automl import AutoBazaarSearch
    from repro.tasks import synth

    task = synth.make_single_table_classification(n_samples=120, random_state=0)
    searcher = AutoBazaarSearch(
        templates=shared_prefix_templates(prefix_seconds), n_splits=2, random_state=0,
        backend="process", workers=workers, n_pending=workers,
        prefix_cache=prefix_cache, cache_dir=cache_dir,
    )
    started = time.time()
    result = searcher.search(task, budget=budget)
    elapsed = time.time() - started
    return result, elapsed


def run_prefix_cache_benchmark(workers=WORKERS, budget=BUDGET,
                               prefix_seconds=PREFIX_SECONDS):
    """Measure cache-off vs cache-on throughput; returns the result payload.

    Raises ``AssertionError`` when the cached scores diverge from the
    uncached ones or the workload never hits the cache.  The speedup
    itself is *returned*, not asserted — the two gates (``main`` for CI,
    the benchmark test for pytest) compare ``payload["speedup"]``
    against ``THRESHOLD`` so each can report the miss in its own format.
    """
    off_result, off_elapsed = _run_search("off", None, workers, budget, prefix_seconds)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-prefix-cache-")
    try:
        on_result, on_elapsed = _run_search("disk", cache_dir, workers, budget,
                                            prefix_seconds)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    off_scores = [record.score for record in off_result.records]
    on_scores = [record.score for record in on_result.records]
    assert len(off_scores) == budget and len(on_scores) == budget
    assert on_scores == off_scores, (
        "prefix cache changed the scores: {} != {}".format(on_scores, off_scores)
    )
    assert on_result.cache_stats["hits"] > 0, "the shared-prefix workload never hit"

    speedup = off_elapsed / on_elapsed
    off_throughput = budget / off_elapsed
    on_throughput = budget / on_elapsed
    payload = {
        "benchmark": "prefix_cache_throughput",
        "workload": {
            "budget": budget,
            "workers": workers,
            "n_splits": 2,
            "prefix_fit_seconds": prefix_seconds,
            "backend": "process",
            "template": "encoder -> timed-identity prefix -> logistic -> decoder",
        },
        "cache_off": {
            "elapsed_seconds": round(off_elapsed, 3),
            "candidates_per_second": round(off_throughput, 3),
        },
        "cache_on": {
            "elapsed_seconds": round(on_elapsed, 3),
            "candidates_per_second": round(on_throughput, 3),
            "stats": on_result.cache_stats,
        },
        "speedup": round(speedup, 3),
        "threshold": THRESHOLD,
        "scores_identical": True,
    }
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_prefix_cache.json",
                        help="where to write the benchmark record "
                             "(default: BENCH_prefix_cache.json)")
    arguments = parser.parse_args(argv)

    payload = run_prefix_cache_benchmark()
    print("cache off : {:.2f}s  ({:.2f} candidates/sec)".format(
        payload["cache_off"]["elapsed_seconds"],
        payload["cache_off"]["candidates_per_second"]))
    print("cache on  : {:.2f}s  ({:.2f} candidates/sec)  stats={}".format(
        payload["cache_on"]["elapsed_seconds"],
        payload["cache_on"]["candidates_per_second"],
        payload["cache_on"]["stats"]))
    print("speedup   : {:.2f}x (threshold {:.2f}x)".format(
        payload["speedup"], payload["threshold"]))

    if payload["speedup"] < THRESHOLD:
        print("FAIL: cache-on speedup {:.2f}x is below the {:.2f}x threshold".format(
            payload["speedup"], THRESHOLD), file=sys.stderr)
        return 1
    with open(arguments.output, "w") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print("recorded  : {}".format(arguments.output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
