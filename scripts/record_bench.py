"""Performance benchmarks recorded to committed ``BENCH_*.json`` files.

Three suites, selected by the positional ``suite`` argument:

``prefix-cache`` (default, -> ``BENCH_prefix_cache.json``)
    Candidate throughput with the disk-tier fitted-prefix cache on vs
    off, on a shared-prefix tuning workload (every candidate shares an
    expensive preprocessing prefix and differs only in estimator
    hyperparameters).  Gate: >= ``THRESHOLD``x.

``data-plane`` (-> ``BENCH_data_plane.json``)
    Process-backend fold-dispatch throughput with the zero-copy
    shared-memory data plane vs the historical on-disk pickle hand-off.
    The task is transport-bound (tiny folds, a large static context
    blob) and every pool worker must materialize it once — the pickle
    plane serializes it and deserializes one full copy per worker, the
    shm plane publishes it once and maps it for free.
    Gate: >= ``DATA_PLANE_THRESHOLD``x.

``batched-eval`` (-> ``BENCH_batched_eval.json``)
    Candidate throughput with batched multi-candidate evaluation on vs
    off: same-template candidates proposed in one barrier round are
    evaluated as fused batches (one shared preprocessing-prefix fit and
    one shared Ridge Gram matrix per fold, one cheap solve per alpha).
    Gate: >= ``BATCHED_EVAL_THRESHOLD``x.

Every suite asserts that its fast path reproduces the slow path's scores
bit-for-bit before reporting a speedup, and exits non-zero when the
speedup misses the gate.  CI records all three and diffs them against the
committed baselines (``scripts/check_bench_regression.py``).

Usage::

    PYTHONPATH=src python scripts/record_bench.py [suite] [--output FILE]
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Acceptance bar: cache-on candidate throughput vs cache-off.
THRESHOLD = 1.5

#: Acceptance bar: shm fold-dispatch throughput vs the pickle data plane.
DATA_PLANE_THRESHOLD = 1.3

#: Acceptance bar: batched candidate throughput vs looped evaluation.
BATCHED_EVAL_THRESHOLD = 1.5

#: Artificial fit cost of the shared preprocessing prefix, per fold.
PREFIX_SECONDS = 0.3

#: Pipeline evaluations per run.
BUDGET = 12

#: Worker processes evaluating folds.
WORKERS = 4

ENCODER = "mlprimitives.custom.preprocessing.ClassEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
TIMED_IDENTITY = "mlprimitives.custom.synthetic.TimedIdentityTransformer"
TIMED_DUMMY = "mlprimitives.custom.synthetic.TimedDummyClassifier"
LOGISTIC = "sklearn.linear_model.LogisticRegression"
IMPUTER = "sklearn.impute.SimpleImputer"
RIDGE = "sklearn.linear_model.Ridge"


# -- prefix-cache suite ----------------------------------------------------------


def shared_prefix_templates(prefix_seconds=PREFIX_SECONDS):
    """One template whose candidates differ only in estimator hyperparameters."""
    from repro.core.template import Template

    return [
        Template(
            "prefix_cache_bench",
            [ENCODER, TIMED_IDENTITY, LOGISTIC, DECODER],
            init_params={TIMED_IDENTITY: {"fit_seconds": prefix_seconds}},
        ),
    ]


def _run_search(prefix_cache, cache_dir, workers, budget, prefix_seconds):
    from repro.automl import AutoBazaarSearch
    from repro.tasks import synth

    task = synth.make_single_table_classification(n_samples=120, random_state=0)
    searcher = AutoBazaarSearch(
        templates=shared_prefix_templates(prefix_seconds), n_splits=2, random_state=0,
        backend="process", workers=workers, n_pending=workers,
        prefix_cache=prefix_cache, cache_dir=cache_dir,
    )
    started = time.time()
    result = searcher.search(task, budget=budget)
    elapsed = time.time() - started
    return result, elapsed


def run_prefix_cache_benchmark(workers=WORKERS, budget=BUDGET,
                               prefix_seconds=PREFIX_SECONDS):
    """Measure cache-off vs cache-on throughput; returns the result payload.

    Raises ``AssertionError`` when the cached scores diverge from the
    uncached ones or the workload never hits the cache.  The speedup
    itself is *returned*, not asserted — the two gates (``main`` for CI,
    the benchmark test for pytest) compare ``payload["speedup"]``
    against ``THRESHOLD`` so each can report the miss in its own format.
    """
    off_result, off_elapsed = _run_search("off", None, workers, budget, prefix_seconds)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-prefix-cache-")
    try:
        on_result, on_elapsed = _run_search("disk", cache_dir, workers, budget,
                                            prefix_seconds)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    off_scores = [record.score for record in off_result.records]
    on_scores = [record.score for record in on_result.records]
    assert len(off_scores) == budget and len(on_scores) == budget
    assert on_scores == off_scores, (
        "prefix cache changed the scores: {} != {}".format(on_scores, off_scores)
    )
    assert on_result.cache_stats["hits"] > 0, "the shared-prefix workload never hit"

    speedup = off_elapsed / on_elapsed
    off_throughput = budget / off_elapsed
    on_throughput = budget / on_elapsed
    payload = {
        "benchmark": "prefix_cache_throughput",
        "workload": {
            "budget": budget,
            "workers": workers,
            "n_splits": 2,
            "prefix_fit_seconds": prefix_seconds,
            "backend": "process",
            "template": "encoder -> timed-identity prefix -> logistic -> decoder",
        },
        "cache_off": {
            "elapsed_seconds": round(off_elapsed, 3),
            "candidates_per_second": round(off_throughput, 3),
        },
        "cache_on": {
            "elapsed_seconds": round(on_elapsed, 3),
            "candidates_per_second": round(on_throughput, 3),
            "stats": on_result.cache_stats,
        },
        "speedup": round(speedup, 3),
        "threshold": THRESHOLD,
        "scores_identical": True,
    }
    return payload


# -- data-plane suite ------------------------------------------------------------

#: Megabytes of static (fold-invariant) task data every worker must map.
DATA_PLANE_BLOB_MBYTES = 192

#: Candidates dispatched through the backend.
DATA_PLANE_CANDIDATES = 12

#: Worker processes that each have to materialize the task once.
DATA_PLANE_WORKERS = 4

#: Timed passes per plane; the best pass is recorded.  Transport time is
#: at the mercy of the disk scheduler (the pickle plane spills ~192MB),
#: so single-pass ratios swing by 3-4x run to run — the best-of-N floor
#: is what the regression gate can hold to a 20% tolerance.
DATA_PLANE_REPEATS = 3


def _data_plane_task(blob_mbytes=DATA_PLANE_BLOB_MBYTES):
    """A task that is cheap to split but expensive to ship.

    The sample-aligned arrays are tiny (fold materialization stays off
    the clock); the bulk of the task is a static context blob that every
    worker must materialize — the pickle plane deserializes it once per
    worker, the shm plane maps the published segment for free.
    """
    import numpy as np

    from repro.tasks.task import MLTask

    rng = np.random.default_rng(0)
    X = rng.normal(size=(4000, 8))
    y = (X[:, 0] > 0).astype(np.int64)
    blob = rng.normal(size=blob_mbytes * 1_000_000 // 8)
    return MLTask("plane_task", "single_table", "classification",
                  {"X": X, "y": y, "blob": blob}, static_keys=("blob",))


def _run_data_plane(data_plane, task, n_candidates, n_splits, workers):
    """Fold dispatches of a transport-bound workload through one data plane.

    The estimator is free (majority class) and the folds are tiny, so
    the measured time is dominated by getting the task's static blob
    into every worker — the cost the data plane determines.
    """
    import numpy as np

    from repro.automl.backends import EvaluationCandidate, ProcessBackend
    from repro.core.template import Template
    from repro.tasks.task import MLTask

    template = Template("data_plane_bench", [TIMED_DUMMY])

    def candidate(iteration, candidate_task):
        return EvaluationCandidate(
            iteration=iteration, template=template,
            hyperparameters=template.default_hyperparameters(),
            task=candidate_task, n_splits=n_splits, random_state=0,
        )

    warmup_task = MLTask("plane_warmup", "single_table", "classification",
                         {"X": np.zeros((40, 4)), "y": np.arange(40) % 2})
    backend = ProcessBackend(workers=workers, task_cache_size=8,
                             data_plane=data_plane)
    try:
        # warm-up: pay the pool spawn before the clock starts (the tiny
        # warm-up task does not preload the benchmark task anywhere)
        backend.submit(candidate(-1, warmup_task))
        for future in backend.as_completed():
            future.result()
        candidates = [candidate(index, task) for index in range(n_candidates)]
        started = time.time()
        for item in candidates:
            backend.submit(item)
        outcomes = {}
        for future in backend.as_completed():
            outcomes[future.candidate.iteration] = future.result()
        elapsed = time.time() - started
        plane_counts = dict(backend.plane_counts)
    finally:
        backend.shutdown()

    scores = []
    for index in range(n_candidates):
        outcome = outcomes[index]
        assert outcome.error is None, outcome.error
        scores.append(outcome.score)
    return scores, elapsed, plane_counts


def _best_of(data_plane, task, n_candidates, n_splits, workers, repeats):
    """Repeat one plane's measurement; returns (scores, best, all, counts)."""
    timings = []
    scores = counts = None
    for _ in range(repeats):
        pass_scores, elapsed, pass_counts = _run_data_plane(
            data_plane, task, n_candidates, n_splits, workers)
        if scores is None:
            scores, counts = pass_scores, pass_counts
        else:
            assert pass_scores == scores, "scores changed between timed passes"
        timings.append(elapsed)
    return scores, min(timings), timings, counts


def run_data_plane_benchmark(n_candidates=DATA_PLANE_CANDIDATES, n_splits=2,
                             blob_mbytes=DATA_PLANE_BLOB_MBYTES,
                             workers=DATA_PLANE_WORKERS,
                             repeats=DATA_PLANE_REPEATS):
    """Measure shm vs pickle fold-dispatch throughput; returns the payload."""
    from repro.automl import shm

    assert shm.shm_available(), "shared memory is unavailable on this platform"
    task = _data_plane_task(blob_mbytes)
    pickle_scores, pickle_elapsed, pickle_timings, pickle_counts = _best_of(
        "pickle", task, n_candidates, n_splits, workers, repeats)
    shm_scores, shm_elapsed, shm_timings, shm_counts = _best_of(
        "shm", task, n_candidates, n_splits, workers, repeats)

    assert shm_scores == pickle_scores, (
        "the data plane changed the scores: {} != {}".format(shm_scores, pickle_scores)
    )
    assert shm_counts["shm"] > 0 and shm_counts["pickle"] == 0
    assert pickle_counts["pickle"] > 0 and pickle_counts["shm"] == 0

    n_folds = n_candidates * n_splits
    speedup = pickle_elapsed / shm_elapsed
    payload = {
        "benchmark": "data_plane_fold_dispatch",
        "workload": {
            "n_candidates": n_candidates,
            "n_splits": n_splits,
            "static_blob_mbytes": blob_mbytes,
            "workers": workers,
            "task_cache_size": 8,
            "timed_passes": repeats,
            "template": "free majority-class estimator (transport-bound)",
        },
        "pickle": {
            "elapsed_seconds": round(pickle_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in pickle_timings],
            "fold_dispatches_per_second": round(n_folds / pickle_elapsed, 3),
            "plane_counts": pickle_counts,
        },
        "shm": {
            "elapsed_seconds": round(shm_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in shm_timings],
            "fold_dispatches_per_second": round(n_folds / shm_elapsed, 3),
            "plane_counts": shm_counts,
        },
        "speedup": round(speedup, 3),
        "threshold": DATA_PLANE_THRESHOLD,
        "scores_identical": True,
    }
    return payload


# -- batched-eval suite ----------------------------------------------------------

#: Pipeline evaluations per batched-eval run (three barrier rounds of 8).
BATCHED_EVAL_BUDGET = 24

#: Candidates proposed per barrier round.
BATCHED_EVAL_PENDING = 8

#: Samples/features of the regression task (Gram matrix dominates a fit).
BATCHED_EVAL_SHAPE = (3000, 150)


def _run_batched_eval(batch_eval, task):
    from repro.automl import AutoBazaarSearch
    from repro.core.template import Template
    from repro.tuning.tuners import UniformTuner

    template = Template(
        "batched_eval_bench", [IMPUTER, RIDGE],
        init_params={IMPUTER: {"strategy": "mean"}},
    )
    searcher = AutoBazaarSearch(
        templates=[template], n_splits=3, random_state=0,
        schedule="barrier", n_pending=BATCHED_EVAL_PENDING,
        batch_eval=batch_eval, tuner_class=UniformTuner,
    )
    started = time.time()
    result = searcher.search(task, budget=BATCHED_EVAL_BUDGET)
    elapsed = time.time() - started
    return result, elapsed


def run_batched_eval_benchmark(shape=BATCHED_EVAL_SHAPE):
    """Measure batched vs looped candidate throughput; returns the payload."""
    from repro.tasks import synth

    task = synth.make_single_table_regression(
        n_samples=shape[0], n_features=shape[1], random_state=0)
    looped_result, looped_elapsed = _run_batched_eval(False, task)
    batched_result, batched_elapsed = _run_batched_eval(True, task)

    looped_records = [(r.template_name, r.iteration, r.score, r.error)
                      for r in looped_result.records]
    batched_records = [(r.template_name, r.iteration, r.score, r.error)
                       for r in batched_result.records]
    assert len(looped_records) == BATCHED_EVAL_BUDGET
    assert batched_records == looped_records, (
        "batched evaluation changed the record stream"
    )

    speedup = looped_elapsed / batched_elapsed
    payload = {
        "benchmark": "batched_eval_throughput",
        "workload": {
            "budget": BATCHED_EVAL_BUDGET,
            "n_pending": BATCHED_EVAL_PENDING,
            "n_splits": 3,
            "task_shape": list(shape),
            "backend": "serial",
            "schedule": "barrier",
            "template": "pinned mean-imputer -> ridge (shared Gram per fold)",
        },
        "looped": {
            "elapsed_seconds": round(looped_elapsed, 3),
            "candidates_per_second": round(BATCHED_EVAL_BUDGET / looped_elapsed, 3),
        },
        "batched": {
            "elapsed_seconds": round(batched_elapsed, 3),
            "candidates_per_second": round(BATCHED_EVAL_BUDGET / batched_elapsed, 3),
        },
        "speedup": round(speedup, 3),
        "threshold": BATCHED_EVAL_THRESHOLD,
        "scores_identical": True,
    }
    return payload


# -- CLI -------------------------------------------------------------------------

#: suite name -> (runner, acceptance threshold, default output file,
#:                (slow label, slow key), (fast label, fast key), rate key)
SUITES = {
    "prefix-cache": (run_prefix_cache_benchmark, THRESHOLD,
                     "BENCH_prefix_cache.json",
                     ("cache off", "cache_off"), ("cache on", "cache_on"),
                     "candidates_per_second"),
    "data-plane": (run_data_plane_benchmark, DATA_PLANE_THRESHOLD,
                   "BENCH_data_plane.json",
                   ("pickle", "pickle"), ("shm", "shm"),
                   "fold_dispatches_per_second"),
    "batched-eval": (run_batched_eval_benchmark, BATCHED_EVAL_THRESHOLD,
                     "BENCH_batched_eval.json",
                     ("looped", "looped"), ("batched", "batched"),
                     "candidates_per_second"),
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("suite", nargs="?", default="prefix-cache",
                        choices=sorted(SUITES),
                        help="benchmark suite to record (default: prefix-cache)")
    parser.add_argument("--output", default=None,
                        help="where to write the benchmark record "
                             "(default: the suite's BENCH_*.json)")
    arguments = parser.parse_args(argv)

    runner, threshold, default_output, slow, fast, rate_key = SUITES[arguments.suite]
    output = arguments.output or default_output

    payload = runner()
    slow_label, slow_key = slow
    fast_label, fast_key = fast
    width = max(len(slow_label), len(fast_label))
    for label, key in ((slow_label, slow_key), (fast_label, fast_key)):
        section = payload[key]
        extra = ""
        if "stats" in section:
            extra = "  stats={}".format(section["stats"])
        if "plane_counts" in section:
            extra = "  plane_counts={}".format(section["plane_counts"])
        print("{:<{width}} : {:.2f}s  ({:.2f} {}){}".format(
            label, section["elapsed_seconds"], section[rate_key],
            rate_key.replace("_", " "), extra, width=width))
    print("{:<{width}} : {:.2f}x (threshold {:.2f}x)".format(
        "speedup", payload["speedup"], threshold, width=width))

    if payload["speedup"] < threshold:
        print("FAIL: {} speedup {:.2f}x is below the {:.2f}x threshold".format(
            arguments.suite, payload["speedup"], threshold), file=sys.stderr)
        return 1
    with open(output, "w") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print("recorded  : {}".format(output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
