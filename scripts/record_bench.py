"""Performance benchmarks recorded to committed ``BENCH_*.json`` files.

Six suites, selected by the positional ``suite`` argument:

``prefix-cache`` (default, -> ``BENCH_prefix_cache.json``)
    Candidate throughput with the disk-tier fitted-prefix cache on vs
    off, on a shared-prefix tuning workload (every candidate shares an
    expensive preprocessing prefix and differs only in estimator
    hyperparameters).  Gate: >= ``THRESHOLD``x.

``data-plane`` (-> ``BENCH_data_plane.json``)
    Process-backend fold-dispatch throughput with the zero-copy
    shared-memory data plane vs the historical on-disk pickle hand-off.
    The task is transport-bound (tiny folds, a large static context
    blob) and every pool worker must materialize it once — the pickle
    plane serializes it and deserializes one full copy per worker, the
    shm plane publishes it once and maps it for free.
    Gate: >= ``DATA_PLANE_THRESHOLD``x.

``batched-eval`` (-> ``BENCH_batched_eval.json``)
    Candidate throughput with batched multi-candidate evaluation on vs
    off: same-template candidates proposed in one barrier round are
    evaluated as fused batches (one shared preprocessing-prefix fit and
    one shared Ridge Gram matrix per fold, one cheap solve per alpha).
    Gate: >= ``BATCHED_EVAL_THRESHOLD``x.

``multi-tenant`` (-> ``BENCH_multi_tenant.json``)
    Aggregate throughput of N=4 concurrent tenant searches multiplexed
    over one shared 4-worker fleet (three cheap tenants, one expensive
    one — the skew the fair-share scheduler must absorb) vs (a) the same
    4 searches run one at a time on the same warm pool and (b) 4
    independent 1-worker pools run concurrently.  Every tenant's record
    stream is asserted bit-identical to its solo serial run.  Gates:
    >= ``MULTI_TENANT_THRESHOLD``x of sequential, and
    >= ``MULTI_TENANT_STATIC_THRESHOLD``x of the static partition.

``telemetry`` (-> ``BENCH_telemetry_overhead.json``)
    Candidate throughput with the structured telemetry event stream on
    vs off, on an event-dense serial workload (prefix cache enabled, so
    every fold also emits cache events).  The events-on run is replayed
    (``repro.telemetry.replayer``) and cross-checked against the real
    record stream before timing counts.  Gate: events-on throughput
    >= ``TELEMETRY_THRESHOLD``x of events-off (i.e. <= ~5% overhead).

``fault-tolerance`` (-> ``BENCH_fault_tolerance.json``)
    Process-backend candidate throughput with the supervised worker pool
    (fold deadlines, heartbeats, crash retry) vs the plain pool, plus a
    third arm in which the supervised pool absorbs one injected worker
    SIGKILL mid-run.  Every arm's record stream is asserted bit-identical
    to a serial baseline.  Gates: supervision overhead when idle
    >= ``FAULT_TOLERANCE_THRESHOLD``x (<= ~5%), and recovery throughput
    >= ``FAULT_RECOVERY_THRESHOLD``x of the fault-free supervised run.

Every suite asserts that its fast path reproduces the slow path's scores
bit-for-bit before reporting a speedup, and exits non-zero when the
speedup misses the gate.  CI records the suites and diffs them against
the committed baselines (``scripts/check_bench_regression.py``).

Every record also embeds a ``metadata`` block (git SHA, python/platform;
the per-suite worker count, schedule and backend live under
``workload``) so a committed baseline documents the environment that
produced it.

Usage::

    PYTHONPATH=src python scripts/record_bench.py [suite] [--output FILE]
"""

import argparse
import contextlib
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Acceptance bar: cache-on candidate throughput vs cache-off.
THRESHOLD = 1.5

#: Acceptance bar: shm fold-dispatch throughput vs the pickle data plane.
DATA_PLANE_THRESHOLD = 1.3

#: Acceptance bar: batched candidate throughput vs looped evaluation.
BATCHED_EVAL_THRESHOLD = 1.5

#: Acceptance bar: concurrent-fleet aggregate throughput vs the same four
#: searches run one at a time on the same warm pool.  Below 1.0 by design:
#: multiplexing may pay a small scheduling tax, but must never collapse.
MULTI_TENANT_THRESHOLD = 0.8

#: Acceptance bar: concurrent-fleet aggregate throughput vs a static
#: partition of the same workers (4 independent 1-worker pools).  This is
#: the number that justifies the fleet: work-conserving sharing beats a
#: static split whenever tenant costs are skewed.
MULTI_TENANT_STATIC_THRESHOLD = 1.5

#: Acceptance bar: events-on candidate throughput vs events-off.  0.95x
#: means the telemetry stream may cost at most ~5% of the run.
TELEMETRY_THRESHOLD = 0.95

#: Artificial fit cost of the shared preprocessing prefix, per fold.
PREFIX_SECONDS = 0.3

#: Pipeline evaluations per run.
BUDGET = 12

#: Worker processes evaluating folds.
WORKERS = 4

ENCODER = "mlprimitives.custom.preprocessing.ClassEncoder"
DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
TIMED_IDENTITY = "mlprimitives.custom.synthetic.TimedIdentityTransformer"
TIMED_DUMMY = "mlprimitives.custom.synthetic.TimedDummyClassifier"
LOGISTIC = "sklearn.linear_model.LogisticRegression"
IMPUTER = "sklearn.impute.SimpleImputer"
RIDGE = "sklearn.linear_model.Ridge"


# -- prefix-cache suite ----------------------------------------------------------


def shared_prefix_templates(prefix_seconds=PREFIX_SECONDS):
    """One template whose candidates differ only in estimator hyperparameters."""
    from repro.core.template import Template

    return [
        Template(
            "prefix_cache_bench",
            [ENCODER, TIMED_IDENTITY, LOGISTIC, DECODER],
            init_params={TIMED_IDENTITY: {"fit_seconds": prefix_seconds}},
        ),
    ]


def _run_search(prefix_cache, cache_dir, workers, budget, prefix_seconds):
    from repro.automl import AutoBazaarSearch
    from repro.tasks import synth

    task = synth.make_single_table_classification(n_samples=120, random_state=0)
    searcher = AutoBazaarSearch(
        templates=shared_prefix_templates(prefix_seconds), n_splits=2, random_state=0,
        backend="process", workers=workers, n_pending=workers,
        prefix_cache=prefix_cache, cache_dir=cache_dir,
    )
    started = time.time()
    result = searcher.search(task, budget=budget)
    elapsed = time.time() - started
    return result, elapsed


def run_prefix_cache_benchmark(workers=WORKERS, budget=BUDGET,
                               prefix_seconds=PREFIX_SECONDS):
    """Measure cache-off vs cache-on throughput; returns the result payload.

    Raises ``AssertionError`` when the cached scores diverge from the
    uncached ones or the workload never hits the cache.  The speedup
    itself is *returned*, not asserted — the two gates (``main`` for CI,
    the benchmark test for pytest) compare ``payload["speedup"]``
    against ``THRESHOLD`` so each can report the miss in its own format.
    """
    off_result, off_elapsed = _run_search("off", None, workers, budget, prefix_seconds)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-prefix-cache-")
    try:
        on_result, on_elapsed = _run_search("disk", cache_dir, workers, budget,
                                            prefix_seconds)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    off_scores = [record.score for record in off_result.records]
    on_scores = [record.score for record in on_result.records]
    assert len(off_scores) == budget and len(on_scores) == budget
    assert on_scores == off_scores, (
        "prefix cache changed the scores: {} != {}".format(on_scores, off_scores)
    )
    assert on_result.cache_stats["hits"] > 0, "the shared-prefix workload never hit"

    speedup = off_elapsed / on_elapsed
    off_throughput = budget / off_elapsed
    on_throughput = budget / on_elapsed
    payload = {
        "benchmark": "prefix_cache_throughput",
        "workload": {
            "budget": budget,
            "workers": workers,
            "n_splits": 2,
            "prefix_fit_seconds": prefix_seconds,
            "backend": "process",
            "template": "encoder -> timed-identity prefix -> logistic -> decoder",
        },
        "cache_off": {
            "elapsed_seconds": round(off_elapsed, 3),
            "candidates_per_second": round(off_throughput, 3),
        },
        "cache_on": {
            "elapsed_seconds": round(on_elapsed, 3),
            "candidates_per_second": round(on_throughput, 3),
            "stats": on_result.cache_stats,
        },
        "speedup": round(speedup, 3),
        "threshold": THRESHOLD,
        "scores_identical": True,
    }
    return payload


# -- data-plane suite ------------------------------------------------------------

#: Megabytes of static (fold-invariant) task data every worker must map.
DATA_PLANE_BLOB_MBYTES = 192

#: Candidates dispatched through the backend.
DATA_PLANE_CANDIDATES = 12

#: Worker processes that each have to materialize the task once.
DATA_PLANE_WORKERS = 4

#: Timed passes per plane; the best pass is recorded.  Transport time is
#: at the mercy of the disk scheduler (the pickle plane spills ~192MB),
#: so single-pass ratios swing by 3-4x run to run — the best-of-N floor
#: is what the regression gate can hold to a 20% tolerance.
DATA_PLANE_REPEATS = 3


def _data_plane_task(blob_mbytes=DATA_PLANE_BLOB_MBYTES):
    """A task that is cheap to split but expensive to ship.

    The sample-aligned arrays are tiny (fold materialization stays off
    the clock); the bulk of the task is a static context blob that every
    worker must materialize — the pickle plane deserializes it once per
    worker, the shm plane maps the published segment for free.
    """
    import numpy as np

    from repro.tasks.task import MLTask

    rng = np.random.default_rng(0)
    X = rng.normal(size=(4000, 8))
    y = (X[:, 0] > 0).astype(np.int64)
    blob = rng.normal(size=blob_mbytes * 1_000_000 // 8)
    return MLTask("plane_task", "single_table", "classification",
                  {"X": X, "y": y, "blob": blob}, static_keys=("blob",))


def _run_data_plane(data_plane, task, n_candidates, n_splits, workers):
    """Fold dispatches of a transport-bound workload through one data plane.

    The estimator is free (majority class) and the folds are tiny, so
    the measured time is dominated by getting the task's static blob
    into every worker — the cost the data plane determines.
    """
    import numpy as np

    from repro.automl.backends import EvaluationCandidate, ProcessBackend
    from repro.core.template import Template
    from repro.tasks.task import MLTask

    template = Template("data_plane_bench", [TIMED_DUMMY])

    def candidate(iteration, candidate_task):
        return EvaluationCandidate(
            iteration=iteration, template=template,
            hyperparameters=template.default_hyperparameters(),
            task=candidate_task, n_splits=n_splits, random_state=0,
        )

    warmup_task = MLTask("plane_warmup", "single_table", "classification",
                         {"X": np.zeros((40, 4)), "y": np.arange(40) % 2})
    backend = ProcessBackend(workers=workers, task_cache_size=8,
                             data_plane=data_plane)
    try:
        # warm-up: pay the pool spawn before the clock starts (the tiny
        # warm-up task does not preload the benchmark task anywhere)
        backend.submit(candidate(-1, warmup_task))
        for future in backend.as_completed():
            future.result()
        candidates = [candidate(index, task) for index in range(n_candidates)]
        started = time.time()
        for item in candidates:
            backend.submit(item)
        outcomes = {}
        for future in backend.as_completed():
            outcomes[future.candidate.iteration] = future.result()
        elapsed = time.time() - started
        plane_counts = dict(backend.plane_counts)
    finally:
        backend.shutdown()

    scores = []
    for index in range(n_candidates):
        outcome = outcomes[index]
        assert outcome.error is None, outcome.error
        scores.append(outcome.score)
    return scores, elapsed, plane_counts


def _best_of(data_plane, task, n_candidates, n_splits, workers, repeats):
    """Repeat one plane's measurement; returns (scores, best, all, counts)."""
    timings = []
    scores = counts = None
    for _ in range(repeats):
        pass_scores, elapsed, pass_counts = _run_data_plane(
            data_plane, task, n_candidates, n_splits, workers)
        if scores is None:
            scores, counts = pass_scores, pass_counts
        else:
            assert pass_scores == scores, "scores changed between timed passes"
        timings.append(elapsed)
    return scores, min(timings), timings, counts


def run_data_plane_benchmark(n_candidates=DATA_PLANE_CANDIDATES, n_splits=2,
                             blob_mbytes=DATA_PLANE_BLOB_MBYTES,
                             workers=DATA_PLANE_WORKERS,
                             repeats=DATA_PLANE_REPEATS):
    """Measure shm vs pickle fold-dispatch throughput; returns the payload."""
    from repro.automl import shm

    assert shm.shm_available(), "shared memory is unavailable on this platform"
    task = _data_plane_task(blob_mbytes)
    pickle_scores, pickle_elapsed, pickle_timings, pickle_counts = _best_of(
        "pickle", task, n_candidates, n_splits, workers, repeats)
    shm_scores, shm_elapsed, shm_timings, shm_counts = _best_of(
        "shm", task, n_candidates, n_splits, workers, repeats)

    assert shm_scores == pickle_scores, (
        "the data plane changed the scores: {} != {}".format(shm_scores, pickle_scores)
    )
    assert shm_counts["shm"] > 0 and shm_counts["pickle"] == 0
    assert pickle_counts["pickle"] > 0 and pickle_counts["shm"] == 0

    n_folds = n_candidates * n_splits
    speedup = pickle_elapsed / shm_elapsed
    payload = {
        "benchmark": "data_plane_fold_dispatch",
        "workload": {
            "n_candidates": n_candidates,
            "n_splits": n_splits,
            "static_blob_mbytes": blob_mbytes,
            "workers": workers,
            "task_cache_size": 8,
            "timed_passes": repeats,
            "template": "free majority-class estimator (transport-bound)",
        },
        "pickle": {
            "elapsed_seconds": round(pickle_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in pickle_timings],
            "fold_dispatches_per_second": round(n_folds / pickle_elapsed, 3),
            "plane_counts": pickle_counts,
        },
        "shm": {
            "elapsed_seconds": round(shm_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in shm_timings],
            "fold_dispatches_per_second": round(n_folds / shm_elapsed, 3),
            "plane_counts": shm_counts,
        },
        "speedup": round(speedup, 3),
        "threshold": DATA_PLANE_THRESHOLD,
        "scores_identical": True,
    }
    return payload


# -- batched-eval suite ----------------------------------------------------------

#: Pipeline evaluations per batched-eval run (three barrier rounds of 8).
BATCHED_EVAL_BUDGET = 24

#: Candidates proposed per barrier round.
BATCHED_EVAL_PENDING = 8

#: Samples/features of the regression task (Gram matrix dominates a fit).
BATCHED_EVAL_SHAPE = (3000, 150)


def _run_batched_eval(batch_eval, task):
    from repro.automl import AutoBazaarSearch
    from repro.core.template import Template
    from repro.tuning.tuners import UniformTuner

    template = Template(
        "batched_eval_bench", [IMPUTER, RIDGE],
        init_params={IMPUTER: {"strategy": "mean"}},
    )
    searcher = AutoBazaarSearch(
        templates=[template], n_splits=3, random_state=0,
        schedule="barrier", n_pending=BATCHED_EVAL_PENDING,
        batch_eval=batch_eval, tuner_class=UniformTuner,
    )
    started = time.time()
    result = searcher.search(task, budget=BATCHED_EVAL_BUDGET)
    elapsed = time.time() - started
    return result, elapsed


def run_batched_eval_benchmark(shape=BATCHED_EVAL_SHAPE):
    """Measure batched vs looped candidate throughput; returns the payload."""
    from repro.tasks import synth

    task = synth.make_single_table_regression(
        n_samples=shape[0], n_features=shape[1], random_state=0)
    looped_result, looped_elapsed = _run_batched_eval(False, task)
    batched_result, batched_elapsed = _run_batched_eval(True, task)

    looped_records = [(r.template_name, r.iteration, r.score, r.error)
                      for r in looped_result.records]
    batched_records = [(r.template_name, r.iteration, r.score, r.error)
                       for r in batched_result.records]
    assert len(looped_records) == BATCHED_EVAL_BUDGET
    assert batched_records == looped_records, (
        "batched evaluation changed the record stream"
    )

    speedup = looped_elapsed / batched_elapsed
    payload = {
        "benchmark": "batched_eval_throughput",
        "workload": {
            "budget": BATCHED_EVAL_BUDGET,
            "n_pending": BATCHED_EVAL_PENDING,
            "n_splits": 3,
            "task_shape": list(shape),
            "backend": "serial",
            "schedule": "barrier",
            "template": "pinned mean-imputer -> ridge (shared Gram per fold)",
        },
        "looped": {
            "elapsed_seconds": round(looped_elapsed, 3),
            "candidates_per_second": round(BATCHED_EVAL_BUDGET / looped_elapsed, 3),
        },
        "batched": {
            "elapsed_seconds": round(batched_elapsed, 3),
            "candidates_per_second": round(BATCHED_EVAL_BUDGET / batched_elapsed, 3),
        },
        "speedup": round(speedup, 3),
        "threshold": BATCHED_EVAL_THRESHOLD,
        "scores_identical": True,
    }
    return payload


# -- multi-tenant suite ----------------------------------------------------------

#: Worker processes in the shared fleet (and tenants in the workload).
MULTI_TENANT_WORKERS = 4

#: Pipeline evaluations per tenant.
MULTI_TENANT_BUDGET = 8

#: Candidates proposed per tenant scheduling window.
MULTI_TENANT_PENDING = 4

#: Per-fold fit cost of each tenant's pipeline: three cheap tenants and
#: one 10x-expensive straggler, the skew the fair-share scheduler must
#: absorb without starving anyone.
MULTI_TENANT_COSTS = (0.01, 0.01, 0.01, 0.1)


def _tenant_template(fit_seconds):
    """One tenant's pipeline: a timed fit stage plus a tunable estimator."""
    from repro.core.template import Template

    return Template(
        "multi_tenant_bench",
        [ENCODER, TIMED_IDENTITY, LOGISTIC, DECODER],
        init_params={TIMED_IDENTITY: {"fit_seconds": fit_seconds}},
    )


def _tenant_search(backend, fit_seconds, n_pending=MULTI_TENANT_PENDING):
    from repro.automl import AutoBazaarSearch
    from repro.tuning.tuners import UniformTuner

    return AutoBazaarSearch(
        templates=[_tenant_template(fit_seconds)], n_splits=2, random_state=0,
        backend=backend, n_pending=n_pending, tuner_class=UniformTuner,
    )


def _tenant_documents(result):
    """The record stream minus ``elapsed``, the only timing-dependent field."""
    documents = [record.to_dict() for record in result.records]
    for document in documents:
        document.pop("elapsed")
    return documents


def _run_tenants_concurrently(tasks, costs, backends, budget):
    """One search thread per tenant; returns (results, elapsed)."""
    import threading

    results = [None] * len(tasks)
    failures = []

    def run(index):
        try:
            searcher = _tenant_search(backends[index], costs[index])
            results[index] = searcher.search(tasks[index], budget=budget)
        except BaseException as failure:  # noqa: BLE001 - re-raised below
            failures.append(failure)

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(len(tasks))]
    started = time.time()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.time() - started
    if failures:
        raise failures[0]
    return results, elapsed


def _warm_pool(backend, workers):
    """Pay the worker-spawn cost before any clock starts.

    Enough free folds are pushed through the backend concurrently to
    force every lazily-spawned pool worker into existence.
    """
    from repro.tasks import synth

    task = synth.make_single_table_classification(
        name="fleet-warmup", n_samples=40, random_state=99)
    searcher = _tenant_search(backend, 0.0, n_pending=2 * workers)
    searcher.search(task, budget=2 * workers)


def run_multi_tenant_benchmark(workers=MULTI_TENANT_WORKERS,
                               budget=MULTI_TENANT_BUDGET,
                               costs=MULTI_TENANT_COSTS):
    """Measure fleet vs sequential vs static-partition throughput.

    Asserts in-run that every tenant's fleet record stream is
    bit-identical to its solo serial run, and that the fleet beats the
    static partition by ``MULTI_TENANT_STATIC_THRESHOLD``x.  The
    sequential-vs-fleet ``speedup`` is returned for the gates to judge.
    """
    from repro.automl import FleetCoordinator, ProcessBackend
    from repro.tasks import synth

    n_tenants = len(costs)
    tasks = [
        synth.make_single_table_classification(
            name="tenant-{}".format(index), n_samples=80, random_state=index)
        for index in range(n_tenants)
    ]

    # solo serial baselines: the determinism yardstick for every phase
    solo_documents = []
    for task, cost in zip(tasks, costs):
        result = _tenant_search("serial", cost).search(task, budget=budget)
        solo_documents.append(_tenant_documents(result))

    total = n_tenants * budget
    fleet = FleetCoordinator(backend="process", workers=workers)
    try:
        warmup = fleet.register(name="warmup")
        _warm_pool(warmup, workers)
        warmup.shutdown()

        # (a) the same searches, one tenant at a time on the same warm pool
        sequential_documents = []
        started = time.time()
        for index, (task, cost) in enumerate(zip(tasks, costs)):
            handle = fleet.register(name="seq-{}".format(index))
            result = _tenant_search(handle, cost).search(task, budget=budget)
            handle.shutdown()
            sequential_documents.append(_tenant_documents(result))
        sequential_elapsed = time.time() - started

        # (b) all tenants at once through the fair-share scheduler
        handles = [fleet.register(name="tenant-{}".format(index))
                   for index in range(n_tenants)]
        fleet_results, fleet_elapsed = _run_tenants_concurrently(
            tasks, costs, handles, budget)
        tenant_stats = [result.fleet_stats for result in fleet_results]
    finally:
        fleet.close()

    for index, result in enumerate(fleet_results):
        assert _tenant_documents(result) == solo_documents[index], (
            "tenant {} diverged from its solo run under the fleet".format(index))
        assert sequential_documents[index] == solo_documents[index], (
            "tenant {} diverged from its solo run on the shared pool".format(index))

    # (c) a static partition: one dedicated 1-worker pool per tenant
    pools = [ProcessBackend(workers=1) for _ in range(n_tenants)]
    try:
        for pool in pools:
            _warm_pool(pool, 1)
        static_results, static_elapsed = _run_tenants_concurrently(
            tasks, costs, pools, budget)
    finally:
        for pool in pools:
            pool.shutdown()
    for index, result in enumerate(static_results):
        assert _tenant_documents(result) == solo_documents[index], (
            "tenant {} diverged from its solo run on a dedicated pool".format(index))

    speedup = sequential_elapsed / fleet_elapsed
    static_speedup = static_elapsed / fleet_elapsed
    assert static_speedup >= MULTI_TENANT_STATIC_THRESHOLD, (
        "fleet is only {:.2f}x a static 1-worker-per-tenant partition "
        "(needs {:.2f}x)".format(static_speedup, MULTI_TENANT_STATIC_THRESHOLD)
    )

    payload = {
        "benchmark": "multi_tenant_aggregate_throughput",
        "workload": {
            "n_tenants": n_tenants,
            "budget_per_tenant": budget,
            "n_splits": 2,
            "n_pending": MULTI_TENANT_PENDING,
            "workers": workers,
            "fold_fit_seconds": list(costs),
            "backend": "process",
            "template": "encoder -> timed-identity fit -> logistic -> decoder",
        },
        "sequential": {
            "elapsed_seconds": round(sequential_elapsed, 3),
            "candidates_per_second": round(total / sequential_elapsed, 3),
        },
        "fleet": {
            "elapsed_seconds": round(fleet_elapsed, 3),
            "candidates_per_second": round(total / fleet_elapsed, 3),
            "tenants": tenant_stats,
        },
        "static": {
            "elapsed_seconds": round(static_elapsed, 3),
            "candidates_per_second": round(total / static_elapsed, 3),
            "speedup_over_static": round(static_speedup, 3),
            "static_threshold": MULTI_TENANT_STATIC_THRESHOLD,
        },
        "speedup": round(speedup, 3),
        "threshold": MULTI_TENANT_THRESHOLD,
        "records_solo_identical": True,
    }
    return payload


# -- telemetry suite -------------------------------------------------------------

#: Pipeline evaluations per telemetry-overhead run.
TELEMETRY_BUDGET = 16

#: Artificial prefix fit cost; small on purpose, so the event stream's
#: per-fold cost is measured against a realistic (not padded) fold.
TELEMETRY_PREFIX_SECONDS = 0.02

#: Timed passes per arm; the best pass is recorded (same rationale as the
#: data-plane suite: the floor is what a tolerance gate can hold).  Five
#: passes because each is sub-second and the gate margin is only 5%.
TELEMETRY_REPEATS = 5


def _run_telemetry_search(task, telemetry, budget, prefix_seconds):
    """One serial search with the prefix cache on and telemetry on or off."""
    from repro.automl import AutoBazaarSearch

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-telemetry-cache-")
    try:
        searcher = AutoBazaarSearch(
            templates=shared_prefix_templates(prefix_seconds), n_splits=2,
            random_state=0, prefix_cache="disk", cache_dir=cache_dir,
            telemetry=telemetry,
        )
        started = time.time()
        result = searcher.search(task, budget=budget)
        elapsed = time.time() - started
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return result, elapsed


def run_telemetry_overhead_benchmark(budget=TELEMETRY_BUDGET,
                                     prefix_seconds=TELEMETRY_PREFIX_SECONDS,
                                     repeats=TELEMETRY_REPEATS):
    """Measure events-on vs events-off throughput; returns the payload.

    Every events-on pass is replayed from its durable stream and the
    reconstructed record stream is asserted bit-identical to the real
    one before its timing counts — an overhead number for a stream that
    cannot be replayed would be meaningless.
    """
    from repro.tasks import synth
    from repro.telemetry.replayer import load_events, replay_run

    # folds must carry realistic (not negligible) compute: with 8ms folds
    # the stream's fixed per-candidate cost reads as inflated relative
    # overhead; 480 samples keeps the workload event-dense while the
    # estimator does representative work per fold
    task = synth.make_single_table_classification(n_samples=480, random_state=0)

    # the arms are interleaved (off, on, off, on, ...) so machine-load
    # drift across the measurement biases both floors equally instead of
    # whichever arm happened to run later
    off_scores, off_timings = None, []
    on_scores, on_timings, n_events = None, [], None
    for _ in range(repeats):
        result, elapsed = _run_telemetry_search(task, None, budget, prefix_seconds)
        scores = [record.score for record in result.records]
        if off_scores is None:
            off_scores = scores
        else:
            assert scores == off_scores, "scores changed between timed passes"
        off_timings.append(elapsed)

        events_dir = tempfile.mkdtemp(prefix="repro-bench-telemetry-events-")
        try:
            result, elapsed = _run_telemetry_search(
                task, events_dir, budget, prefix_seconds)
            scores = [record.score for record in result.records]
            if on_scores is None:
                on_scores = scores
            else:
                assert scores == on_scores, "scores changed between timed passes"
            on_timings.append(elapsed)
            documents = [record.to_dict() for record in result.records]
            report = replay_run(load_events(events_dir),
                                record_documents=documents)
            assert report["records"] == documents, (
                "replayed record stream is not bit-identical to the real one"
            )
            n_events = report["n_events"]
        finally:
            shutil.rmtree(events_dir, ignore_errors=True)

    assert len(off_scores) == budget and on_scores == off_scores, (
        "telemetry changed the scores: {} != {}".format(on_scores, off_scores)
    )

    off_elapsed, on_elapsed = min(off_timings), min(on_timings)
    speedup = off_elapsed / on_elapsed
    payload = {
        "benchmark": "telemetry_overhead",
        "workload": {
            "budget": budget,
            "n_splits": 2,
            "prefix_fit_seconds": prefix_seconds,
            "backend": "serial",
            "prefix_cache": "disk",
            "timed_passes": repeats,
            "template": "encoder -> timed-identity prefix -> logistic -> decoder",
        },
        "events_off": {
            "elapsed_seconds": round(off_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in off_timings],
            "candidates_per_second": round(budget / off_elapsed, 3),
        },
        "events_on": {
            "elapsed_seconds": round(on_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in on_timings],
            "candidates_per_second": round(budget / on_elapsed, 3),
            "n_events": n_events,
        },
        "overhead_fraction": round(on_elapsed / off_elapsed - 1.0, 4),
        "speedup": round(speedup, 3),
        "threshold": TELEMETRY_THRESHOLD,
        "scores_identical": True,
        "replay_round_trip": True,
    }
    return payload


# -- fault-tolerance suite -------------------------------------------------------

#: Acceptance bar: supervised (deadlines + heartbeats + retry machinery,
#: no faults) candidate throughput vs the plain unsupervised pool.  0.95x
#: means supervision may cost at most ~5% when idle.
FAULT_TOLERANCE_THRESHOLD = 0.95

#: Acceptance bar: throughput of a supervised run that absorbs one
#: worker SIGKILL vs the fault-free supervised run.  The respawn pause is
#: real wall-clock; it must stay under ~30% of the run.
FAULT_RECOVERY_THRESHOLD = 0.7

#: Worker processes evaluating folds.
FAULT_WORKERS = 2

#: Pipeline evaluations per timed run.
FAULT_BUDGET = 12

#: Candidates proposed per scheduling window.
FAULT_PENDING = 4

#: Per-fold fit cost; large enough that one worker respawn (~1s of
#: process start + import) cannot dominate the run, and that the
#: supervised pool's per-fold dispatch round-trip (the worker idles
#: between reporting a result and receiving the next fold; the plain
#: pool prefetches into a shared call queue) is amortized the way any
#: real model fit amortizes it.
FAULT_FIT_SECONDS = 0.3

#: Timed passes per arm; the best pass is recorded (the floor is what a
#: tolerance gate can hold).
FAULT_REPEATS = 3

#: Folds claimed by the pool warm-up before the timed search starts
#: (``2 * FAULT_WORKERS`` warm candidates x 2 splits): the injected kill
#: is scheduled past them, mid-way through the timed folds.
FAULT_WARM_FOLDS = 2 * FAULT_WORKERS * 2

#: Global fold index (warm-up included) at which the fault fires.
FAULT_AT_FOLD = FAULT_WARM_FOLDS + FAULT_BUDGET  # = warm + half the timed folds


def _fault_warm_pool(backend):
    """Spawn every pool worker before any clock starts."""
    from repro.tasks import synth

    task = synth.make_single_table_classification(
        name="fault-warmup", n_samples=40, random_state=99)
    searcher = _tenant_search(backend, 0.0, n_pending=2 * FAULT_WORKERS)
    searcher.search(task, budget=2 * FAULT_WORKERS)


def _fault_tolerance_pass(task, supervised, plan=None):
    """One warmed, timed search; returns ``(result, elapsed_seconds)``.

    The backend is built inside ``plan.activate()`` when a plan is given:
    workers read the fault plan from their environment at spawn time.
    """
    from repro.automl import ProcessBackend

    kwargs = {"workers": FAULT_WORKERS}
    if supervised:
        kwargs.update(fold_timeout=120.0, max_fold_retries=1)
    context = plan.activate() if plan is not None else contextlib.nullcontext()
    with context:
        backend = ProcessBackend(**kwargs)
        try:
            _fault_warm_pool(backend)
            searcher = _tenant_search(backend, FAULT_FIT_SECONDS,
                                      n_pending=FAULT_PENDING)
            started = time.time()
            result = searcher.search(task, budget=FAULT_BUDGET)
            elapsed = time.time() - started
        finally:
            backend.shutdown()
    return result, elapsed


def run_fault_tolerance_benchmark(budget=FAULT_BUDGET, repeats=FAULT_REPEATS):
    """Measure supervision overhead when idle and recovery under a kill.

    Three process-backend arms over the same workload: the plain
    unsupervised pool, the supervised pool with no faults, and the
    supervised pool absorbing one injected worker SIGKILL mid-run.
    Every arm's record stream is asserted bit-identical to a serial
    baseline — the fault-masking guarantee — and the faulted arm must
    hold ``FAULT_RECOVERY_THRESHOLD``x of fault-free throughput.  The
    unsupervised-vs-supervised ``speedup`` is returned for the gates.
    """
    from repro.automl import FaultPlan
    from repro.tasks import synth

    task = synth.make_single_table_classification(
        name="fault-bench", n_samples=80, random_state=0)
    baseline = _tenant_documents(
        _tenant_search("serial", FAULT_FIT_SECONDS).search(task, budget=budget))

    unsupervised_timings, supervised_timings, faulted_timings = [], [], []
    faulted_stats = None
    # interleaved (unsupervised, supervised, faulted, ...) so machine-load
    # drift biases every arm's floor equally
    for _ in range(repeats):
        result, elapsed = _fault_tolerance_pass(task, supervised=False)
        assert _tenant_documents(result) == baseline, (
            "unsupervised run diverged from the serial baseline")
        unsupervised_timings.append(elapsed)

        result, elapsed = _fault_tolerance_pass(task, supervised=True)
        assert _tenant_documents(result) == baseline, (
            "supervised run diverged from the serial baseline")
        assert result.supervisor_stats["workers_died"] == 0
        supervised_timings.append(elapsed)

        plan = FaultPlan.single("worker_kill", at_fold=FAULT_AT_FOLD)
        result, elapsed = _fault_tolerance_pass(task, supervised=True, plan=plan)
        assert _tenant_documents(result) == baseline, (
            "the worker kill leaked into the record stream")
        stats = result.supervisor_stats
        assert stats["workers_died"] == 1 and stats["pools_rebuilt"] == 1, stats
        assert stats["folds_quarantined"] == 0, stats
        faulted_timings.append(elapsed)
        faulted_stats = stats

    unsupervised_elapsed = min(unsupervised_timings)
    supervised_elapsed = min(supervised_timings)
    faulted_elapsed = min(faulted_timings)
    speedup = unsupervised_elapsed / supervised_elapsed
    recovery_ratio = supervised_elapsed / faulted_elapsed
    recovery_seconds = max(0.0, faulted_elapsed - supervised_elapsed)
    assert recovery_ratio >= FAULT_RECOVERY_THRESHOLD, (
        "one worker kill cost {:.2f}s: throughput fell to {:.2f}x of "
        "fault-free (needs {:.2f}x)".format(
            recovery_seconds, recovery_ratio, FAULT_RECOVERY_THRESHOLD)
    )

    payload = {
        "benchmark": "fault_tolerance_overhead_and_recovery",
        "workload": {
            "budget": budget,
            "n_splits": 2,
            "n_pending": FAULT_PENDING,
            "workers": FAULT_WORKERS,
            "fold_fit_seconds": FAULT_FIT_SECONDS,
            "backend": "process",
            "fold_timeout": 120.0,
            "max_fold_retries": 1,
            "timed_passes": repeats,
            "template": "encoder -> timed-identity fit -> logistic -> decoder",
        },
        "unsupervised": {
            "elapsed_seconds": round(unsupervised_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in unsupervised_timings],
            "candidates_per_second": round(budget / unsupervised_elapsed, 3),
        },
        "supervised": {
            "elapsed_seconds": round(supervised_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in supervised_timings],
            "candidates_per_second": round(budget / supervised_elapsed, 3),
        },
        "faulted": {
            "elapsed_seconds": round(faulted_elapsed, 3),
            "all_passes_seconds": [round(t, 3) for t in faulted_timings],
            "candidates_per_second": round(budget / faulted_elapsed, 3),
            "fault": {"kind": "worker_kill", "at_fold": FAULT_AT_FOLD},
            "recovery_seconds": round(recovery_seconds, 3),
            "recovery_ratio": round(recovery_ratio, 3),
            "recovery_threshold": FAULT_RECOVERY_THRESHOLD,
            "supervisor_stats": faulted_stats,
        },
        "speedup": round(speedup, 3),
        "threshold": FAULT_TOLERANCE_THRESHOLD,
        "records_identical": True,
    }
    return payload


# -- CLI -------------------------------------------------------------------------

#: suite name -> (runner, acceptance threshold, default output file,
#:                (slow label, slow key), (fast label, fast key), rate key)
SUITES = {
    "prefix-cache": (run_prefix_cache_benchmark, THRESHOLD,
                     "BENCH_prefix_cache.json",
                     ("cache off", "cache_off"), ("cache on", "cache_on"),
                     "candidates_per_second"),
    "data-plane": (run_data_plane_benchmark, DATA_PLANE_THRESHOLD,
                   "BENCH_data_plane.json",
                   ("pickle", "pickle"), ("shm", "shm"),
                   "fold_dispatches_per_second"),
    "batched-eval": (run_batched_eval_benchmark, BATCHED_EVAL_THRESHOLD,
                     "BENCH_batched_eval.json",
                     ("looped", "looped"), ("batched", "batched"),
                     "candidates_per_second"),
    "multi-tenant": (run_multi_tenant_benchmark, MULTI_TENANT_THRESHOLD,
                     "BENCH_multi_tenant.json",
                     ("sequential", "sequential"), ("fleet", "fleet"),
                     "candidates_per_second"),
    "telemetry": (run_telemetry_overhead_benchmark, TELEMETRY_THRESHOLD,
                  "BENCH_telemetry_overhead.json",
                  ("events off", "events_off"), ("events on", "events_on"),
                  "candidates_per_second"),
    "fault-tolerance": (run_fault_tolerance_benchmark, FAULT_TOLERANCE_THRESHOLD,
                        "BENCH_fault_tolerance.json",
                        ("unsupervised", "unsupervised"),
                        ("supervised", "supervised"),
                        "candidates_per_second"),
}


def _run_metadata():
    """Environment provenance embedded in every benchmark record."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
        git_sha = completed.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    return {
        "git_sha": git_sha,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("suite", nargs="?", default="prefix-cache",
                        choices=sorted(SUITES),
                        help="benchmark suite to record (default: prefix-cache)")
    parser.add_argument("--output", default=None,
                        help="where to write the benchmark record "
                             "(default: the suite's BENCH_*.json)")
    arguments = parser.parse_args(argv)

    runner, threshold, default_output, slow, fast, rate_key = SUITES[arguments.suite]
    output = arguments.output or default_output

    payload = runner()
    payload["metadata"] = _run_metadata()
    slow_label, slow_key = slow
    fast_label, fast_key = fast
    width = max(len(slow_label), len(fast_label))
    for label, key in ((slow_label, slow_key), (fast_label, fast_key)):
        section = payload[key]
        extra = ""
        if "stats" in section:
            extra = "  stats={}".format(section["stats"])
        if "plane_counts" in section:
            extra = "  plane_counts={}".format(section["plane_counts"])
        print("{:<{width}} : {:.2f}s  ({:.2f} {}){}".format(
            label, section["elapsed_seconds"], section[rate_key],
            rate_key.replace("_", " "), extra, width=width))
    print("{:<{width}} : {:.2f}x (threshold {:.2f}x)".format(
        "speedup", payload["speedup"], threshold, width=width))

    if payload["speedup"] < threshold:
        print("FAIL: {} speedup {:.2f}x is below the {:.2f}x threshold".format(
            arguments.suite, payload["speedup"], threshold), file=sys.stderr)
        return 1
    with open(output, "w") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print("recorded  : {}".format(output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
