"""Fail when a freshly recorded benchmark regresses against its baseline.

Each argument is a ``baseline.json:current.json`` pair of records written
by ``scripts/record_bench.py``.  The current run's ``speedup`` must stay
within ``--tolerance`` (default 20%) of the committed baseline's — CI
records the benchmarks next to the committed ``BENCH_*.json`` files and
runs this script so a perf regression fails the build even when the
absolute acceptance threshold is still met.

Usage::

    python scripts/check_bench_regression.py [--tolerance 0.20] \\
        .bench-baseline/BENCH_data_plane.json:BENCH_data_plane.json ...
"""

import argparse
import json
import sys


def compare(baseline_path, current_path, tolerance):
    """Returns an error string, or ``None`` when the pair is acceptable."""
    with open(baseline_path) as stream:
        baseline = json.load(stream)
    with open(current_path) as stream:
        current = json.load(stream)
    if baseline.get("benchmark") != current.get("benchmark"):
        return "{}: benchmark {!r} does not match baseline {!r}".format(
            current_path, current.get("benchmark"), baseline.get("benchmark"))
    floor = baseline["speedup"] * (1.0 - tolerance)
    if current["speedup"] < floor:
        return ("{}: speedup {:.2f}x regressed below {:.2f}x "
                "(baseline {:.2f}x - {:.0f}% tolerance)").format(
            current_path, current["speedup"], floor,
            baseline["speedup"], tolerance * 100)
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("pairs", nargs="+", metavar="BASELINE:CURRENT",
                        help="colon-separated baseline/current record pair")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional speedup drop vs the baseline "
                             "(default: 0.20)")
    arguments = parser.parse_args(argv)
    if not 0.0 <= arguments.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    failures = []
    for pair in arguments.pairs:
        baseline_path, separator, current_path = pair.partition(":")
        if not separator or not baseline_path or not current_path:
            parser.error("expected BASELINE:CURRENT, got {!r}".format(pair))
        error = compare(baseline_path, current_path, arguments.tolerance)
        if error:
            failures.append(error)
        else:
            with open(current_path) as stream:
                speedup = json.load(stream)["speedup"]
            print("ok: {} ({:.2f}x vs baseline within {:.0f}%)".format(
                current_path, speedup, arguments.tolerance * 100))

    for failure in failures:
        print("FAIL: {}".format(failure), file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
