"""Fail when a freshly recorded benchmark regresses against its baseline.

Two modes:

**Pair mode** — each argument is a ``baseline.json:current.json`` pair of
records written by ``scripts/record_bench.py``.  The current run's
``speedup`` must stay within ``--tolerance`` (default 20%) of the
committed baseline's.

**Fresh-dir mode** (``--fresh-dir DIR``) — the unified CI gate: every
committed ``BENCH_*.json`` at the repository root is paired with the
same-named fresh record in ``DIR`` (where the benchmark jobs upload their
runs) and diffed with the same tolerance.  A committed record with no
fresh counterpart fails the gate — a benchmark that silently stopped
running is itself a regression.

Usage::

    python scripts/check_bench_regression.py [--tolerance 0.20] \\
        .bench-baseline/BENCH_data_plane.json:BENCH_data_plane.json ...
    python scripts/check_bench_regression.py [--tolerance 0.20] \\
        --fresh-dir .bench-fresh
"""

import argparse
import glob
import json
import os
import sys


def compare(baseline_path, current_path, tolerance):
    """Returns an error string, or ``None`` when the pair is acceptable."""
    with open(baseline_path) as stream:
        baseline = json.load(stream)
    with open(current_path) as stream:
        current = json.load(stream)
    if baseline.get("benchmark") != current.get("benchmark"):
        return "{}: benchmark {!r} does not match baseline {!r}".format(
            current_path, current.get("benchmark"), baseline.get("benchmark"))
    floor = baseline["speedup"] * (1.0 - tolerance)
    if current["speedup"] < floor:
        return ("{}: speedup {:.2f}x regressed below {:.2f}x "
                "(baseline {:.2f}x - {:.0f}% tolerance)").format(
            current_path, current["speedup"], floor,
            baseline["speedup"], tolerance * 100)
    return None


def fresh_dir_pairs(fresh_dir, root=None):
    """Pair every committed ``BENCH_*.json`` with its fresh counterpart.

    Returns ``(pairs, missing)``: the ``(baseline, current)`` path pairs
    for records present in both places, and the names of committed
    records with no fresh copy.
    """
    root = root or os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    committed = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    pairs, missing = [], []
    for baseline_path in committed:
        name = os.path.basename(baseline_path)
        current_path = os.path.join(fresh_dir, name)
        if os.path.exists(current_path):
            pairs.append((baseline_path, current_path))
        else:
            missing.append(name)
    return pairs, missing


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("pairs", nargs="*", metavar="BASELINE:CURRENT",
                        help="colon-separated baseline/current record pair")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional speedup drop vs the baseline "
                             "(default: 0.20)")
    parser.add_argument("--fresh-dir", default=None, metavar="DIR",
                        help="diff every committed BENCH_*.json against the "
                             "same-named fresh record in DIR; a committed "
                             "record missing from DIR fails the gate")
    arguments = parser.parse_args(argv)
    if not 0.0 <= arguments.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if bool(arguments.pairs) == bool(arguments.fresh_dir):
        parser.error("pass either BASELINE:CURRENT pairs or --fresh-dir, "
                     "not both and not neither")

    failures = []
    pairs = []
    if arguments.fresh_dir:
        pairs, missing = fresh_dir_pairs(arguments.fresh_dir)
        for name in missing:
            failures.append("{}: committed record has no fresh copy in {} "
                            "(did its benchmark job stop recording?)".format(
                                name, arguments.fresh_dir))
        if not pairs and not missing:
            failures.append("{}: no committed BENCH_*.json records found"
                            .format(arguments.fresh_dir))
    else:
        for pair in arguments.pairs:
            baseline_path, separator, current_path = pair.partition(":")
            if not separator or not baseline_path or not current_path:
                parser.error("expected BASELINE:CURRENT, got {!r}".format(pair))
            pairs.append((baseline_path, current_path))

    for baseline_path, current_path in pairs:
        error = compare(baseline_path, current_path, arguments.tolerance)
        if error:
            failures.append(error)
        else:
            with open(current_path) as stream:
                speedup = json.load(stream)["speedup"]
            print("ok: {} ({:.2f}x vs baseline within {:.0f}%)".format(
                current_path, speedup, arguments.tolerance * 100))

    for failure in failures:
        print("FAIL: {}".format(failure), file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
