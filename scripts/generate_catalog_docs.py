"""Generate the primitive catalog reference (docs/catalog.md) from the registry.

The annotations are machine-readable by design (paper Section III-A:
"detailed metadata about each primitive available in both human- and
machine-readable form"); this script renders them as a markdown reference
grouped by source library.

Run with:  python scripts/generate_catalog_docs.py [output_path]
"""

import sys
from collections import defaultdict

from repro.core.catalog import build_catalog


def render_catalog(registry):
    """Render the whole registry as a markdown document."""
    by_source = defaultdict(list)
    for annotation in registry:
        by_source[annotation.source].append(annotation)

    lines = [
        "# Primitive catalog reference",
        "",
        "Generated from the annotations in `repro.core.catalog` "
        "({} primitives).".format(len(registry)),
        "",
    ]
    for source in sorted(by_source, key=lambda name: -len(by_source[name])):
        annotations = sorted(by_source[source], key=lambda a: a.name)
        lines.append("## {} ({})".format(source, len(annotations)))
        lines.append("")
        lines.append("| primitive | category | tunable hyperparameters | description |")
        lines.append("|---|---|---|---|")
        for annotation in annotations:
            tunable = ", ".join(
                "{} ({})".format(spec.name, spec.type)
                for spec in annotation.tunable_hyperparameters
            ) or "—"
            description = annotation.metadata.get("description", "")
            lines.append("| `{}` | {} | {} | {} |".format(
                annotation.name, annotation.category, tunable, description))
        lines.append("")
    return "\n".join(lines)


def main(output_path="docs/catalog.md"):
    """Write the rendered catalog to ``output_path``."""
    import os

    registry = build_catalog()
    document = render_catalog(registry)
    os.makedirs(os.path.dirname(output_path) or ".", exist_ok=True)
    with open(output_path, "w") as stream:
        stream.write(document)
    print("Wrote {} primitives to {}".format(len(registry), output_path))
    return output_path


if __name__ == "__main__":
    main(*sys.argv[1:2])
